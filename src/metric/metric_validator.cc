#include "metric/metric_validator.h"

#include <cmath>
#include <sstream>

namespace cned {

std::optional<TriangleViolation> FindTriangleViolation(
    const StringDistance& dist, const std::vector<std::string>& sample,
    double tol) {
  const std::size_t n = sample.size();
  // Cache the pairwise matrix: O(n^2) distance calls instead of O(n^3).
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d[i][j] = d[j][i] = dist.Distance(sample[i], sample[j]);
    }
  }
  std::optional<TriangleViolation> worst;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      for (std::size_t k = 0; k < n; ++k) {
        if (k == i || k == j) continue;
        double margin = d[i][k] - (d[i][j] + d[j][k]);
        if (margin > tol && (!worst || margin > worst->margin)) {
          worst = TriangleViolation{sample[i], sample[j], sample[k],
                                    d[i][j],   d[j][k],   d[i][k],
                                    margin};
        }
      }
    }
  }
  return worst;
}

std::string CheckIdentityAndSymmetry(const StringDistance& dist,
                                     const std::vector<std::string>& sample,
                                     double tol) {
  std::ostringstream os;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    if (std::abs(dist.Distance(sample[i], sample[i])) > tol) {
      os << "d(x,x) != 0 for x=\"" << sample[i] << "\"";
      return os.str();
    }
    for (std::size_t j = i + 1; j < sample.size(); ++j) {
      double dij = dist.Distance(sample[i], sample[j]);
      double dji = dist.Distance(sample[j], sample[i]);
      if (std::abs(dij - dji) > tol) {
        os << "asymmetry for (\"" << sample[i] << "\", \"" << sample[j]
           << "\"): " << dij << " vs " << dji;
        return os.str();
      }
      if (sample[i] != sample[j] && dij <= tol) {
        os << "d(x,y) == 0 for distinct x=\"" << sample[i] << "\" y=\""
           << sample[j] << "\"";
        return os.str();
      }
    }
  }
  return "";
}

}  // namespace cned
