#ifndef CNED_METRIC_STATS_H_
#define CNED_METRIC_STATS_H_

#include <cstddef>
#include <vector>

namespace cned {

/// Streaming mean / variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double v);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance (the intrinsic-dimension formula uses sigma^2 of
  /// the observed histogram, not the sample-corrected estimate).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Chavez et al.'s intrinsic dimensionality of a metric space,
/// rho = mu^2 / (2 sigma^2), estimated from a sample of pairwise distances.
/// Higher rho = more concentrated histogram = harder to search (paper §4.2,
/// Table 1).
double IntrinsicDimensionality(const RunningStats& stats);

/// Convenience overload over raw distance samples.
double IntrinsicDimensionality(const std::vector<double>& distances);

}  // namespace cned

#endif  // CNED_METRIC_STATS_H_
