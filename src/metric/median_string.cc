#include "metric/median_string.h"

#include <limits>
#include <stdexcept>

namespace cned {

double TotalDistance(const std::string& candidate,
                     const std::vector<std::string>& sample,
                     const StringDistance& dist) {
  double total = 0.0;
  for (const auto& s : sample) total += dist.Distance(candidate, s);
  return total;
}

std::size_t SetMedianIndex(const std::vector<std::string>& sample,
                           const StringDistance& dist) {
  if (sample.empty()) {
    throw std::invalid_argument("SetMedianIndex: empty sample");
  }
  std::size_t best = 0;
  double best_total = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < sample.size(); ++i) {
    double total = TotalDistance(sample[i], sample, dist);
    if (total < best_total) {
      best_total = total;
      best = i;
    }
  }
  return best;
}

std::string ApproximateMedianString(const std::vector<std::string>& sample,
                                    const StringDistance& dist,
                                    const Alphabet& alphabet,
                                    std::size_t max_rounds) {
  std::string current = sample[SetMedianIndex(sample, dist)];
  double current_total = TotalDistance(current, sample, dist);

  for (std::size_t round = 0; round < max_rounds; ++round) {
    std::string best_candidate = current;
    double best_total = current_total;

    auto consider = [&](std::string&& candidate) {
      double total = TotalDistance(candidate, sample, dist);
      if (total < best_total) {
        best_total = total;
        best_candidate = std::move(candidate);
      }
    };

    for (std::size_t pos = 0; pos <= current.size(); ++pos) {
      // Insertions at pos.
      for (std::size_t a = 0; a < alphabet.size(); ++a) {
        std::string cand = current;
        cand.insert(cand.begin() + static_cast<std::ptrdiff_t>(pos),
                    alphabet.symbol(a));
        consider(std::move(cand));
      }
      if (pos == current.size()) break;
      // Substitutions at pos.
      for (std::size_t a = 0; a < alphabet.size(); ++a) {
        if (alphabet.symbol(a) == current[pos]) continue;
        std::string cand = current;
        cand[pos] = alphabet.symbol(a);
        consider(std::move(cand));
      }
      // Deletion at pos.
      if (current.size() > 1) {
        std::string cand = current;
        cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(pos));
        consider(std::move(cand));
      }
    }

    if (best_total + 1e-12 >= current_total) break;  // local optimum
    current = std::move(best_candidate);
    current_total = best_total;
  }
  return current;
}

}  // namespace cned
