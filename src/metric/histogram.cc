#include "metric/histogram.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace cned {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: invalid range or bin count");
  }
}

void Histogram::Add(double v) {
  stats_.Add(v);
  double t = (v - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
}

double Histogram::BinCenter(std::size_t i) const {
  double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

std::string Histogram::ToSeries() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << BinCenter(i) << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

std::string Histogram::ToAscii(std::size_t max_width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::size_t w =
        peak == 0 ? 0 : counts_[i] * max_width / peak;
    os << std::setw(8) << BinCenter(i) << " | " << std::string(w, '#') << ' '
       << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace cned
