#ifndef CNED_METRIC_METRIC_VALIDATOR_H_
#define CNED_METRIC_METRIC_VALIDATOR_H_

#include <optional>
#include <string>
#include <vector>

#include "distances/distance.h"

namespace cned {

/// A witness that the triangle inequality fails:
/// d(x,z) > d(x,y) + d(y,z) by `margin`.
struct TriangleViolation {
  std::string x, y, z;
  double dxy = 0.0, dyz = 0.0, dxz = 0.0;
  double margin = 0.0;
};

/// Checks the metric axioms of `dist` over all triples from `sample`
/// (identity and symmetry over all pairs, triangle over all ordered
/// triples). Returns the worst triangle violation found, or nullopt when
/// every axiom holds within `tol`.
///
/// This is how the tests reproduce the paper's §2.2 counterexamples
/// (d_sum/d_max/d_min are not metrics) and corroborate Theorem 1 (d_C is).
std::optional<TriangleViolation> FindTriangleViolation(
    const StringDistance& dist, const std::vector<std::string>& sample,
    double tol = 1e-9);

/// Verifies d(x,y) == 0 iff x == y, and d(x,y) == d(y,x), over all pairs of
/// `sample`. Returns a human-readable description of the first failure, or
/// empty string if all hold within `tol`.
std::string CheckIdentityAndSymmetry(const StringDistance& dist,
                                     const std::vector<std::string>& sample,
                                     double tol = 1e-9);

}  // namespace cned

#endif  // CNED_METRIC_METRIC_VALIDATOR_H_
