#ifndef CNED_METRIC_HISTOGRAM_H_
#define CNED_METRIC_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

#include "metric/stats.h"

namespace cned {

/// Fixed-range histogram used for the paper's distance-distribution figures
/// (Figures 1 and 2) and the intrinsic-dimensionality analysis (§4.2).
class Histogram {
 public:
  /// `bins` equal-width bins covering [lo, hi). Values outside the range are
  /// clamped into the first/last bin so no sample is lost.
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double v);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return stats_.count(); }

  /// Center of bin `i`.
  double BinCenter(std::size_t i) const;

  /// Summary statistics of the raw (unbinned) samples.
  const RunningStats& stats() const { return stats_; }

  /// Renders "center count" lines, the series format of the paper's figures.
  std::string ToSeries() const;

  /// Renders a horizontal ASCII bar chart (for the bench harness output).
  std::string ToAscii(std::size_t max_width = 60) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  RunningStats stats_;
};

}  // namespace cned

#endif  // CNED_METRIC_HISTOGRAM_H_
