#ifndef CNED_METRIC_DISTANCE_MATRIX_H_
#define CNED_METRIC_DISTANCE_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "distances/distance.h"
#include "metric/histogram.h"
#include "metric/stats.h"

namespace cned {

/// Symmetric pairwise distance matrix over a string sample, computed in
/// parallel (the distance objects in this library are stateless and
/// thread-compatible). Backs the histogram/intrinsic-dimensionality
/// experiments, where the O(n^2) pair loop dominates.
class DistanceMatrix {
 public:
  /// Computes all n(n-1)/2 pairs of `sample` under `dist` using `threads`
  /// workers (0 = hardware concurrency).
  DistanceMatrix(const std::vector<std::string>& sample,
                 const StringDistance& dist, std::size_t threads = 0);

  std::size_t size() const { return n_; }

  /// d(sample[i], sample[j]); zero on the diagonal.
  double At(std::size_t i, std::size_t j) const;

  /// Statistics over the strict upper triangle (each unordered pair once).
  RunningStats PairStats() const;

  /// Intrinsic dimensionality rho = mu^2/(2 sigma^2) of the pair distances.
  double IntrinsicDimension() const;

  /// Fills `hist` with every pair distance.
  void FillHistogram(Histogram& hist) const;

 private:
  std::size_t n_;
  std::vector<double> upper_;  // packed strict upper triangle

  std::size_t PackIndex(std::size_t i, std::size_t j) const;
};

}  // namespace cned

#endif  // CNED_METRIC_DISTANCE_MATRIX_H_
