#include "metric/distance_matrix.h"

#include <stdexcept>

#include "common/parallel.h"

namespace cned {

DistanceMatrix::DistanceMatrix(const std::vector<std::string>& sample,
                               const StringDistance& dist,
                               std::size_t threads)
    : n_(sample.size()) {
  if (n_ < 2) {
    throw std::invalid_argument("DistanceMatrix: need at least two strings");
  }
  upper_.assign(n_ * (n_ - 1) / 2, 0.0);
  // One parallel task per row i computes pairs (i, i+1..n-1); rows write to
  // disjoint slices of the packed triangle.
  ParallelFor(n_ - 1, [&](std::size_t i) {
    std::size_t base = PackIndex(i, i + 1);
    for (std::size_t j = i + 1; j < n_; ++j) {
      upper_[base + (j - i - 1)] = dist.Distance(sample[i], sample[j]);
    }
  }, threads);
}

std::size_t DistanceMatrix::PackIndex(std::size_t i, std::size_t j) const {
  // Requires i < j. Row i starts after sum_{r<i} (n-1-r) entries
  // = i(n-1) - i(i-1)/2.
  return i * (n_ - 1) - i * (i - 1) / 2 + (j - i - 1);
}

double DistanceMatrix::At(std::size_t i, std::size_t j) const {
  if (i >= n_ || j >= n_) {
    throw std::out_of_range("DistanceMatrix::At: index out of range");
  }
  if (i == j) return 0.0;
  if (i > j) std::swap(i, j);
  return upper_[PackIndex(i, j)];
}

RunningStats DistanceMatrix::PairStats() const {
  RunningStats stats;
  for (double d : upper_) stats.Add(d);
  return stats;
}

double DistanceMatrix::IntrinsicDimension() const {
  return IntrinsicDimensionality(PairStats());
}

void DistanceMatrix::FillHistogram(Histogram& hist) const {
  for (double d : upper_) hist.Add(d);
}

}  // namespace cned
