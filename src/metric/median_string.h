#ifndef CNED_METRIC_MEDIAN_STRING_H_
#define CNED_METRIC_MEDIAN_STRING_H_

#include <cstddef>
#include <string>
#include <vector>

#include "distances/distance.h"
#include "strings/alphabet.h"

namespace cned {

/// Set median: the element of `sample` minimising the sum of distances to
/// every other element. A standard prototype-condensation primitive in
/// metric-space pattern recognition (the natural companion of the paper's
/// classification experiments). Returns the index into `sample`.
std::size_t SetMedianIndex(const std::vector<std::string>& sample,
                           const StringDistance& dist);

/// Approximate (generalised) median string: starts from the set median and
/// greedily applies single-symbol edits (substitution / insertion /
/// deletion over `alphabet`) while the total distance to `sample`
/// decreases. `max_rounds` bounds the hill-climbing sweeps.
///
/// With d_C this yields a *length-aware* median — long outliers pull the
/// median less than under d_E, which is the contextual distance's selling
/// point applied to prototype construction.
std::string ApproximateMedianString(const std::vector<std::string>& sample,
                                    const StringDistance& dist,
                                    const Alphabet& alphabet,
                                    std::size_t max_rounds = 8);

/// Sum of distances from `candidate` to every element of `sample`.
double TotalDistance(const std::string& candidate,
                     const std::vector<std::string>& sample,
                     const StringDistance& dist);

}  // namespace cned

#endif  // CNED_METRIC_MEDIAN_STRING_H_
