#include "metric/stats.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cned {

void RunningStats::Add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  double delta = v - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (v - mean_);
}

double RunningStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double IntrinsicDimensionality(const RunningStats& stats) {
  double var = stats.variance();
  if (var <= 0.0) {
    throw std::invalid_argument("IntrinsicDimensionality: zero variance");
  }
  return stats.mean() * stats.mean() / (2.0 * var);
}

double IntrinsicDimensionality(const std::vector<double>& distances) {
  RunningStats s;
  for (double d : distances) s.Add(d);
  return IntrinsicDimensionality(s);
}

}  // namespace cned
