#include "datasets/dna_gen.h"

#include <gtest/gtest.h>

#include "distances/levenshtein.h"
#include "metric/stats.h"
#include "strings/alphabet.h"

namespace cned {
namespace {

TEST(DnaGenTest, CountAndLabels) {
  DnaOptions opt;
  opt.sequence_count = 200;
  opt.family_count = 10;
  Dataset ds = GenerateDnaGenes(opt);
  EXPECT_EQ(ds.size(), 200u);
  ASSERT_TRUE(ds.labeled());
  for (int label : ds.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

TEST(DnaGenTest, SequencesOverDnaAlphabet) {
  DnaOptions opt;
  opt.sequence_count = 100;
  Dataset ds = GenerateDnaGenes(opt);
  Alphabet dna = Alphabet::Dna();
  for (const auto& s : ds.strings) {
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(dna.ContainsAll(s));
  }
}

TEST(DnaGenTest, Deterministic) {
  DnaOptions opt;
  opt.sequence_count = 50;
  opt.seed = 5;
  EXPECT_EQ(GenerateDnaGenes(opt).strings, GenerateDnaGenes(opt).strings);
}

TEST(DnaGenTest, WideLengthSpread) {
  // Log-normal ancestors must produce a wide length range — the property
  // that separates the normalised distances in the paper's Figure 2.
  DnaOptions opt;
  opt.sequence_count = 300;
  opt.family_count = 60;
  Dataset ds = GenerateDnaGenes(opt);
  RunningStats lens;
  for (const auto& s : ds.strings) lens.Add(static_cast<double>(s.size()));
  EXPECT_GT(lens.max() / lens.min(), 4.0);
  EXPECT_GT(lens.stddev(), 50.0);
}

TEST(DnaGenTest, FamilyMembersCloserThanStrangers) {
  DnaOptions opt;
  opt.sequence_count = 40;
  opt.family_count = 4;
  opt.median_length = 120;
  opt.log_sigma = 0.2;
  Dataset ds = GenerateDnaGenes(opt);
  // Sequences i and i+family_count share a family.
  double within = 0.0, across = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    within += static_cast<double>(
        LevenshteinDistance(ds.strings[i], ds.strings[i + 4]));
    across += static_cast<double>(
        LevenshteinDistance(ds.strings[i], ds.strings[(i + 1) % 4]));
    ++pairs;
  }
  EXPECT_LT(within / pairs, across / pairs);
}

TEST(DnaGenTest, LengthsClamped) {
  DnaOptions opt;
  opt.sequence_count = 100;
  opt.min_length = 50;
  opt.max_length = 200;
  opt.log_sigma = 2.0;  // extreme spread to force clamping
  opt.mutation_rate = 0.0;
  opt.indel_rate = 0.0;
  Dataset ds = GenerateDnaGenes(opt);
  for (const auto& s : ds.strings) {
    EXPECT_GE(s.size(), 50u);
    EXPECT_LE(s.size(), 200u);
  }
}

TEST(DnaGenTest, RejectsZeroCounts) {
  DnaOptions opt;
  opt.family_count = 0;
  EXPECT_THROW(GenerateDnaGenes(opt), std::invalid_argument);
}

}  // namespace
}  // namespace cned
