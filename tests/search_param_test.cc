// Parameterized conformance suite for the nearest-neighbour indexes: every
// (index family x metric distance) combination must return exactly the
// exhaustive-search nearest-neighbour distance on every query.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "search/aesa.h"
#include "search/bk_tree.h"
#include "search/exhaustive.h"
#include "search/laesa.h"
#include "search/vp_tree.h"

namespace cned {
namespace {

enum class IndexKind { kLaesa, kAesa, kVpTree, kBkTree };

std::string KindName(IndexKind k) {
  switch (k) {
    case IndexKind::kLaesa:
      return "Laesa";
    case IndexKind::kAesa:
      return "Aesa";
    case IndexKind::kVpTree:
      return "VpTree";
    case IndexKind::kBkTree:
      return "BkTree";
  }
  return "?";
}

using Param = std::tuple<IndexKind, std::string>;

class IndexConformanceTest : public ::testing::TestWithParam<Param> {
 protected:
  std::unique_ptr<NearestNeighborSearcher> MakeIndex(
      const std::vector<std::string>& protos, StringDistancePtr dist) {
    switch (std::get<0>(GetParam())) {
      case IndexKind::kLaesa:
        return std::make_unique<Laesa>(protos, dist, 12);
      case IndexKind::kAesa:
        return std::make_unique<Aesa>(protos, dist);
      case IndexKind::kVpTree:
        return std::make_unique<VpTree>(protos, dist);
      case IndexKind::kBkTree:
        return std::make_unique<BkTree>(protos, dist);
    }
    return nullptr;
  }
};

TEST_P(IndexConformanceTest, AgreesWithExhaustiveSearch) {
  const auto& [kind, dist_name] = GetParam();
  DictionaryOptions opt;
  opt.word_count = 150;
  opt.seed = 1000 + static_cast<std::uint64_t>(kind);
  auto protos = GenerateDictionary(opt).strings;

  auto dist = MakeDistance(dist_name);
  auto index = MakeIndex(protos, dist);
  ExhaustiveSearch exact(protos, dist);

  Rng rng(2000);
  auto queries = MakeQueries(protos, 40, 2, Alphabet::Latin(), rng);
  for (const auto& q : queries) {
    EXPECT_NEAR(index->Nearest(q).distance, exact.Nearest(q).distance, 1e-9)
        << KindName(kind) << "/" << dist_name << " query=" << q;
  }
}

TEST_P(IndexConformanceTest, SelfQueriesReturnZero) {
  const auto& [kind, dist_name] = GetParam();
  DictionaryOptions opt;
  opt.word_count = 60;
  opt.seed = 3000;
  auto protos = GenerateDictionary(opt).strings;
  auto index = MakeIndex(protos, MakeDistance(dist_name));
  for (std::size_t i = 0; i < protos.size(); i += 7) {
    EXPECT_DOUBLE_EQ(index->Nearest(protos[i]).distance, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricIndexes, IndexConformanceTest,
    ::testing::Values(Param{IndexKind::kLaesa, "dE"},
                      Param{IndexKind::kLaesa, "dYB"},
                      Param{IndexKind::kLaesa, "dC"},
                      Param{IndexKind::kAesa, "dE"},
                      Param{IndexKind::kAesa, "dYB"},
                      Param{IndexKind::kAesa, "dC"},
                      Param{IndexKind::kVpTree, "dE"},
                      Param{IndexKind::kVpTree, "dYB"},
                      Param{IndexKind::kVpTree, "dC"},
                      Param{IndexKind::kBkTree, "dE"}),
    [](const auto& info) {
      std::string name = std::get<1>(info.param);
      for (char& c : name) {
        if (c == ',') c = '_';
      }
      return KindName(std::get<0>(info.param)) + "_" + name;
    });

}  // namespace
}  // namespace cned
