// The distributed serving tier's two contracts, pinned end to end over
// real forked worker processes:
//
//   1. Healthy = bit-identical. A router over 1/2/4/8 workers returns the
//      same neighbours, the same distances AND the same QueryStats as the
//      in-process ShardedLaesa, on both the lazy and the pivot-row path.
//   2. Degraded = correctly flagged. Crashed (kill -9), unresponsive,
//      and corrupt-stream workers cost exactly their shard: results come
//      back partial with the missed shards named, surviving distances
//      stay exact, respawn restores full health, and the same fault
//      schedule over the same queries reproduces identical partial
//      results run to run.

#include <gtest/gtest.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/stat.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/registry.h"
#include "search/sharded_laesa.h"
#include "serve/router.h"
#include "serve/shard_snapshot.h"

namespace cned {
namespace {

struct Workload {
  std::vector<std::string> protos;
  std::vector<std::string> queries;
};

Workload MakeWorkload(std::size_t words, std::size_t queries,
                      std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = words;
  opt.seed = seed;
  Workload w;
  w.protos = GenerateDictionary(opt).strings;
  Rng rng(seed + 1);
  w.queries = MakeQueries(w.protos, queries, 2, Alphabet::Latin(), rng);
  return w;
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/cned_serve_XXXXXX";
    char* p = mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    if (!path.empty()) std::filesystem::remove_all(path);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

/// In-process reference index + its serving snapshot on disk.
struct Deployment {
  TempDir dir;
  std::unique_ptr<ShardedPrototypeStore> store;
  std::unique_ptr<ShardedLaesa> index;

  Deployment(const std::vector<std::string>& protos, std::size_t shards,
             std::size_t pivots) {
    store = std::make_unique<ShardedPrototypeStore>(protos, shards);
    index = std::make_unique<ShardedLaesa>(*store, MakeDistance("dE"), pivots);
    SaveServingSnapshot(*index, dir.path);
  }
};

ServeOptions FastOptions() {
  ServeOptions opt;
  opt.distance = "dE";
  opt.op_timeout_ms = 400;  // drop faults resolve in sub-second time
  opt.op_retries = 2;
  opt.backoff_base_ms = 2;
  return opt;
}

void ExpectHealthyIdentical(const ServeResult& got,
                            const std::vector<NeighborResult>& want,
                            const QueryStats& want_stats,
                            const std::string& context) {
  EXPECT_FALSE(got.partial) << context;
  EXPECT_TRUE(got.missing_shards.empty()) << context;
  ASSERT_EQ(got.neighbors.size(), want.size()) << context;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.neighbors[i].index, want[i].index) << context << " i=" << i;
    EXPECT_EQ(got.neighbors[i].distance, want[i].distance)
        << context << " i=" << i;
  }
  EXPECT_TRUE(got.stats == want_stats)
      << context << ": distributed (" << got.stats.distance_computations
      << ", " << got.stats.bounded_abandons << ", "
      << got.stats.pivot_computations << ", " << got.stats.shards_degraded
      << ") != in-process (" << want_stats.distance_computations << ", "
      << want_stats.bounded_abandons << ", " << want_stats.pivot_computations
      << ", " << want_stats.shards_degraded << ")";
}

// --- Contract 1: healthy bit-identity --------------------------------------

TEST(ServeDistributedTest, HealthyLazyPathBitIdenticalAcrossWorkerCounts) {
  Workload w = MakeWorkload(120, 8, 7100);
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    Deployment dep(w.protos, shards, 8);
    ServeRouter router(dep.dir.path, FastOptions());
    ASSERT_EQ(router.shard_count(), shards);
    ASSERT_EQ(router.size(), w.protos.size());
    ASSERT_EQ(router.pivots(), dep.index->pivots());
    for (const auto& q : w.queries) {
      const std::string ctx = "S=" + std::to_string(shards) + " q=" + q;
      QueryStats s1;
      const NeighborResult a = dep.index->Nearest(q, &s1);
      ExpectHealthyIdentical(router.Nearest(q), {a}, s1, ctx + " k=1");

      QueryStats sk;
      const auto ka = dep.index->KNearest(q, 5, &sk);
      ExpectHealthyIdentical(router.KNearest(q, 5), ka, sk, ctx + " k=5");
    }
  }
}

TEST(ServeDistributedTest, HealthyBatchPathBitIdenticalAcrossWorkerCounts) {
  Workload w = MakeWorkload(120, 8, 7200);
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    Deployment dep(w.protos, shards, 8);
    ServeRouter router(dep.dir.path, FastOptions());
    const auto got = router.KNearestBatch(w.queries, 4);
    ASSERT_EQ(got.size(), w.queries.size());
    std::vector<double> row(dep.index->pivot_count());
    for (std::size_t i = 0; i < w.queries.size(); ++i) {
      QueryStats ref;
      dep.index->ComputePivotRow(w.queries[i], row.data(), &ref);
      const auto want =
          dep.index->KNearestWithPivotRow(w.queries[i], 4, row.data(), &ref);
      ExpectHealthyIdentical(got[i], want, ref,
                             "S=" + std::to_string(shards) +
                                 " q=" + w.queries[i]);
    }
  }
}

// --- Contract 2: flagged degradation ---------------------------------------

TEST(ServeDistributedTest, CrashMidSweepDegradesExactlyThatShard) {
  Workload w = MakeWorkload(150, 3, 7300);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  opt.fault_spec = "crash:shard=2,op=step,nth=2";
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);

  const ServeResult r = router.KNearest(w.queries[0], 3);
  EXPECT_TRUE(r.partial);
  ASSERT_EQ(r.missing_shards, std::vector<std::size_t>{2});
  EXPECT_EQ(r.stats.shards_degraded, 1u);
  EXPECT_FALSE(router.worker_alive(2));
  // Every distance the degraded answer reports is still exact.
  auto dist = MakeDistance("dE");
  for (const NeighborResult& nb : r.neighbors) {
    EXPECT_EQ(nb.distance, dist->Distance(w.queries[0], w.protos[nb.index]));
  }

  // Respawn restores full health and bit-identity.
  EXPECT_FALSE(router.PingAll());
  EXPECT_EQ(router.RespawnDead(), 1u);
  EXPECT_TRUE(router.PingAll());
  QueryStats ref;
  const auto want = dep.index->KNearest(w.queries[1], 3, &ref);
  ExpectHealthyIdentical(router.KNearest(w.queries[1], 3), want, ref,
                         "post-respawn");
}

TEST(ServeDistributedTest, UnresponsiveStepIsNeverRetriedAndDegrades) {
  Workload w = MakeWorkload(100, 2, 7400);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  // The worker swallows one Step: the router must not resend a mutating
  // op — the shard is degraded on the first timeout.
  opt.fault_spec = "drop:shard=1,op=step,nth=1";
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);
  const ServeResult r = router.Nearest(w.queries[0]);
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.missing_shards, std::vector<std::size_t>{1});
  EXPECT_FALSE(router.worker_alive(1));
}

TEST(ServeDistributedTest, UnresponsiveIdempotentOpIsRetriedTransparently) {
  Workload w = MakeWorkload(100, 4, 7500);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  // Dropped Eval and dropped BeginLazy replies: both are idempotent, so
  // the retry path must absorb them with no effect on the answer.
  opt.fault_spec = "drop:shard=1,op=eval,nth=1|drop:shard=3,op=begin,nth=1";
  ServeRouter router(dep.dir.path, opt);
  for (const auto& q : w.queries) {
    QueryStats ref;
    const auto want = dep.index->KNearest(q, 3, &ref);
    ExpectHealthyIdentical(router.KNearest(q, 3), want, ref,
                           "retried q=" + q);
  }
  EXPECT_TRUE(router.PingAll());
}

TEST(ServeDistributedTest, CorruptReplyIsTreatedAsDeadShard) {
  Workload w = MakeWorkload(100, 2, 7600);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  opt.fault_spec = "corrupt:shard=0,op=step,nth=1";
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);
  const ServeResult r = router.Nearest(w.queries[0]);
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.missing_shards, std::vector<std::size_t>{0});
  EXPECT_FALSE(router.worker_alive(0));
}

TEST(ServeDistributedTest, DeadlineExpiryReturnsFlaggedPartialIncumbents) {
  Workload w = MakeWorkload(200, 1, 7700);
  Deployment dep(w.protos, 4, 12);
  ServeOptions opt = FastOptions();
  // Every remote evaluation outsleeps the per-op window, so the retries
  // burn the whole budget: the sweep hits the deadline with candidates
  // still live and must hand back flagged incumbents, not block.
  opt.fault_spec = "delay:op=eval,ms=300";
  opt.query_deadline_ms = 250;
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);
  const ServeResult r = router.KNearest(w.queries[0], 5);
  EXPECT_TRUE(r.partial);
  EXPECT_FALSE(r.missing_shards.empty());
  EXPECT_EQ(r.stats.shards_degraded, r.missing_shards.size());
  // Whatever incumbents made it in before the deadline are exact.
  auto dist = MakeDistance("dE");
  for (const NeighborResult& nb : r.neighbors) {
    EXPECT_EQ(nb.distance, dist->Distance(w.queries[0], w.protos[nb.index]));
  }
}

TEST(ServeDistributedTest, CrashMidBatchCostsOneQueryAndAutoRespawns) {
  Workload w = MakeWorkload(120, 6, 7800);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  // The worker for shard 1 dies when query 3's BeginRow arrives; respawn
  // runs between queries, so exactly one answer in the batch is partial.
  opt.fault_spec = "crash:shard=1,op=begin,nth=3";
  ServeRouter router(dep.dir.path, opt);
  const auto got = router.KNearestBatch(w.queries, 3);
  ASSERT_EQ(got.size(), w.queries.size());
  std::vector<double> row(dep.index->pivot_count());
  std::size_t partials = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i].partial) {
      ++partials;
      EXPECT_EQ(got[i].missing_shards, std::vector<std::size_t>{1}) << i;
      continue;
    }
    QueryStats ref;
    dep.index->ComputePivotRow(w.queries[i], row.data(), &ref);
    const auto want =
        dep.index->KNearestWithPivotRow(w.queries[i], 3, row.data(), &ref);
    ExpectHealthyIdentical(got[i], want, ref, "batch q=" + w.queries[i]);
  }
  EXPECT_EQ(partials, 1u);
  EXPECT_TRUE(router.worker_alive(1));
}

TEST(ServeDistributedTest, KillNineIsSurvivedFlaggedAndRecoveredFrom) {
  Workload w = MakeWorkload(120, 5, 7900);
  Deployment dep(w.protos, 4, 8);
  ServeRouter router(dep.dir.path, FastOptions());

  QueryStats ref0;
  const auto want0 = dep.index->KNearest(w.queries[0], 3, &ref0);
  ExpectHealthyIdentical(router.KNearest(w.queries[0], 3), want0, ref0,
                         "pre-kill");

  // A real kill -9, not an injected fault: the worker vanishes between
  // queries and the router finds out mid-query from the dead socket.
  const pid_t victim = router.worker_pid(2);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(kill(victim, SIGKILL), 0);

  const ServeResult during = router.KNearest(w.queries[1], 3);
  EXPECT_TRUE(during.partial);
  EXPECT_EQ(during.missing_shards, std::vector<std::size_t>{2});
  auto dist = MakeDistance("dE");
  for (const NeighborResult& nb : during.neighbors) {
    EXPECT_EQ(nb.distance, dist->Distance(w.queries[1], w.protos[nb.index]));
  }

  // auto_respawn brings shard 2 back for the next query: full bit-identity
  // again, under a fresh pid.
  QueryStats ref2;
  const auto want2 = dep.index->KNearest(w.queries[2], 3, &ref2);
  ExpectHealthyIdentical(router.KNearest(w.queries[2], 3), want2, ref2,
                         "post-respawn");
  EXPECT_TRUE(router.worker_alive(2));
  EXPECT_NE(router.worker_pid(2), victim);
}

// --- Satellite: degraded-mode determinism ----------------------------------

void ExpectSameServeResult(const ServeResult& a, const ServeResult& b,
                           const std::string& context) {
  EXPECT_EQ(a.partial, b.partial) << context;
  EXPECT_EQ(a.missing_shards, b.missing_shards) << context;
  EXPECT_TRUE(a.stats == b.stats) << context;
  ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << context;
  for (std::size_t i = 0; i < a.neighbors.size(); ++i) {
    EXPECT_EQ(a.neighbors[i].index, b.neighbors[i].index) << context;
    EXPECT_EQ(a.neighbors[i].distance, b.neighbors[i].distance) << context;
  }
}

TEST(ServeDistributedTest, DegradedLazyResultsAreDeterministicAcrossRuns) {
  Workload w = MakeWorkload(140, 5, 8000);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  // A mixed schedule: one crash and one swallowed mutating op. Counted
  // per directive, the schedule is a pure function of the request
  // sequence — so two fresh routers over the same queries must degrade
  // identically, down to the stats.
  opt.fault_spec = "crash:shard=2,op=step,nth=4|drop:shard=0,op=step,nth=6";
  opt.respawn_fault_spec = "";
  auto run = [&]() {
    ServeRouter router(dep.dir.path, opt);
    std::vector<ServeResult> out;
    for (const auto& q : w.queries) out.push_back(router.KNearest(q, 3));
    return out;
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  std::size_t partials = 0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    ExpectSameServeResult(first[i], second[i],
                          "lazy run q=" + w.queries[i]);
    partials += first[i].partial ? 1 : 0;
  }
  EXPECT_GT(partials, 0u);  // the schedule really fired
}

TEST(ServeDistributedTest, DegradedBatchResultsAreDeterministicAcrossRuns) {
  Workload w = MakeWorkload(140, 6, 8100);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  opt.fault_spec = "crash:shard=3,op=begin,nth=2";
  auto run = [&]() {
    ServeRouter router(dep.dir.path, opt);
    return router.KNearestBatch(w.queries, 3);
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  std::size_t partials = 0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    ExpectSameServeResult(first[i], second[i],
                          "batch run q=" + w.queries[i]);
    partials += first[i].partial ? 1 : 0;
  }
  EXPECT_EQ(partials, 1u);
}

// --- Snapshot-level robustness ---------------------------------------------

TEST(ServeDistributedTest, CorruptShardSnapshotNeverServes) {
  Workload w = MakeWorkload(80, 2, 8200);
  Deployment dep(w.protos, 2, 6);
  // Flip one payload byte in shard 1's index slice: its worker must fail
  // the pre-map checksum pass and answer with errors, degrading the shard
  // — corrupted bytes are never silently merged into results.
  {
    const std::string path = ShardIndexPath(dep.dir.path, 1);
    FILE* f = fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    fseek(f, 200, SEEK_SET);
    int c = fgetc(f);
    fseek(f, 200, SEEK_SET);
    fputc(c ^ 0x40, f);
    fclose(f);
  }
  ServeOptions opt = FastOptions();
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);
  const ServeResult r = router.Nearest(w.queries[0]);
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.missing_shards, std::vector<std::size_t>{1});
}

TEST(ServeDistributedTest, ExecFormWorkerBinaryServesIdentically) {
  // The fork+exec deployment form (ServeOptions::worker_binary) must be
  // the same protocol peer as the default in-process fork. The built
  // `cned_shard_worker` sits next to this test binary.
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) GTEST_SKIP() << "cannot resolve own binary path";
  const auto bin = self.parent_path() / "cned_shard_worker";
  if (!std::filesystem::exists(bin)) {
    GTEST_SKIP() << "cned_shard_worker not built";
  }
  Workload w = MakeWorkload(100, 4, 8300);
  Deployment dep(w.protos, 3, 8);
  ServeOptions opt = FastOptions();
  opt.worker_binary = bin.string();
  ServeRouter router(dep.dir.path, opt);
  for (const auto& q : w.queries) {
    QueryStats ref;
    const auto want = dep.index->KNearest(q, 3, &ref);
    ExpectHealthyIdentical(router.KNearest(q, 3), want, ref,
                           "exec q=" + q);
  }
}

TEST(ServeDistributedTest, RouterRejectsMissingManifest) {
  TempDir empty;
  EXPECT_THROW(ServeRouter(empty.path, FastOptions()), std::exception);
}

}  // namespace
}  // namespace cned
