// The distributed serving tier's two contracts, pinned end to end over
// real forked worker processes:
//
//   1. Healthy = bit-identical. A router over 1/2/4/8 workers returns the
//      same neighbours, the same distances AND the same QueryStats as the
//      in-process ShardedLaesa, on both the lazy and the pivot-row path.
//   2. Degraded = correctly flagged. Crashed (kill -9), unresponsive,
//      and corrupt-stream workers cost exactly their shard: results come
//      back partial with the missed shards named, surviving distances
//      stay exact, respawn restores full health, and the same fault
//      schedule over the same queries reproduces identical partial
//      results run to run.
//   3. Replicated = exact through failure. With a replica group of R=2
//      per shard (the default), losing any shard's *primary* mid-sweep —
//      injected crash or a real kill -9 — promotes the standby, whose
//      slab state is bit-identical by state-machine replication, and the
//      query completes exact and UNFLAGGED. Only losing a whole group
//      degrades. Slow primaries are hedged on Evals; disagreeing
//      standbys are evicted; the health loop revives dead replicas in
//      the background.
//
// Fault directives without a `replica=` selector fire on every group
// member (identical op sequences), so the contract-2 tests above keep
// their exact semantics at R=2: the injected fault takes out the whole
// group.

#include <gtest/gtest.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/registry.h"
#include "search/sharded_laesa.h"
#include "search/sweep_kernel.h"
#include "search/table_quant.h"
#include "serve/router.h"
#include "serve/shard_snapshot.h"

namespace cned {
namespace {

struct Workload {
  std::vector<std::string> protos;
  std::vector<std::string> queries;
};

Workload MakeWorkload(std::size_t words, std::size_t queries,
                      std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = words;
  opt.seed = seed;
  Workload w;
  w.protos = GenerateDictionary(opt).strings;
  Rng rng(seed + 1);
  w.queries = MakeQueries(w.protos, queries, 2, Alphabet::Latin(), rng);
  return w;
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/cned_serve_XXXXXX";
    char* p = mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    if (!path.empty()) std::filesystem::remove_all(path);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

/// In-process reference index + its serving snapshot on disk.
struct Deployment {
  TempDir dir;
  std::unique_ptr<ShardedPrototypeStore> store;
  std::unique_ptr<ShardedLaesa> index;

  Deployment(const std::vector<std::string>& protos, std::size_t shards,
             std::size_t pivots,
             TablePrecision precision = DefaultTablePrecision()) {
    store = std::make_unique<ShardedPrototypeStore>(protos, shards);
    index = std::make_unique<ShardedLaesa>(*store, MakeDistance("dE"), pivots,
                                           /*first_pivot=*/0, precision);
    SaveServingSnapshot(*index, dir.path);
  }
};

ServeOptions FastOptions() {
  ServeOptions opt;
  opt.distance = "dE";
  opt.op_timeout_ms = 400;  // drop faults resolve in sub-second time
  opt.op_retries = 2;
  opt.backoff_base_ms = 2;
  return opt;
}

void ExpectHealthyIdentical(const ServeResult& got,
                            const std::vector<NeighborResult>& want,
                            const QueryStats& want_stats,
                            const std::string& context) {
  EXPECT_FALSE(got.partial) << context;
  EXPECT_TRUE(got.missing_shards.empty()) << context;
  ASSERT_EQ(got.neighbors.size(), want.size()) << context;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.neighbors[i].index, want[i].index) << context << " i=" << i;
    EXPECT_EQ(got.neighbors[i].distance, want[i].distance)
        << context << " i=" << i;
  }
  EXPECT_TRUE(got.stats == want_stats)
      << context << ": distributed (" << got.stats.distance_computations
      << ", " << got.stats.bounded_abandons << ", "
      << got.stats.pivot_computations << ", " << got.stats.shards_degraded
      << ") != in-process (" << want_stats.distance_computations << ", "
      << want_stats.bounded_abandons << ", " << want_stats.pivot_computations
      << ", " << want_stats.shards_degraded << ")";
}

// --- Contract 1: healthy bit-identity --------------------------------------

TEST(ServeDistributedTest, HealthyLazyPathBitIdenticalAcrossWorkerCounts) {
  Workload w = MakeWorkload(120, 8, 7100);
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    Deployment dep(w.protos, shards, 8);
    ServeRouter router(dep.dir.path, FastOptions());
    ASSERT_EQ(router.shard_count(), shards);
    ASSERT_EQ(router.size(), w.protos.size());
    ASSERT_EQ(router.pivots(), dep.index->pivots());
    for (const auto& q : w.queries) {
      const std::string ctx = "S=" + std::to_string(shards) + " q=" + q;
      QueryStats s1;
      const NeighborResult a = dep.index->Nearest(q, &s1);
      ExpectHealthyIdentical(router.Nearest(q), {a}, s1, ctx + " k=1");

      QueryStats sk;
      const auto ka = dep.index->KNearest(q, 5, &sk);
      ExpectHealthyIdentical(router.KNearest(q, 5), ka, sk, ctx + " k=5");
    }
  }
}

TEST(ServeDistributedTest, HealthyBatchPathBitIdenticalAcrossWorkerCounts) {
  Workload w = MakeWorkload(120, 8, 7200);
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    Deployment dep(w.protos, shards, 8);
    ServeRouter router(dep.dir.path, FastOptions());
    const auto got = router.KNearestBatch(w.queries, 4);
    ASSERT_EQ(got.size(), w.queries.size());
    std::vector<double> row(dep.index->pivot_count());
    for (std::size_t i = 0; i < w.queries.size(); ++i) {
      QueryStats ref;
      dep.index->ComputePivotRow(w.queries[i], row.data(), &ref);
      const auto want =
          dep.index->KNearestWithPivotRow(w.queries[i], 4, row.data(), &ref);
      ExpectHealthyIdentical(got[i], want, ref,
                             "S=" + std::to_string(shards) +
                                 " q=" + w.queries[i]);
    }
  }
}

// --- Contract 2: flagged degradation ---------------------------------------

TEST(ServeDistributedTest, CrashMidSweepDegradesExactlyThatShard) {
  Workload w = MakeWorkload(150, 3, 7300);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  opt.fault_spec = "crash:shard=2,op=step,nth=2";
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);

  const ServeResult r = router.KNearest(w.queries[0], 3);
  EXPECT_TRUE(r.partial);
  ASSERT_EQ(r.missing_shards, std::vector<std::size_t>{2});
  EXPECT_EQ(r.stats.shards_degraded, 1u);
  EXPECT_FALSE(router.worker_alive(2));
  // Every distance the degraded answer reports is still exact.
  auto dist = MakeDistance("dE");
  for (const NeighborResult& nb : r.neighbors) {
    EXPECT_EQ(nb.distance, dist->Distance(w.queries[0], w.protos[nb.index]));
  }

  // Respawn restores full health and bit-identity. The no-replica-selector
  // crash directive fired on both group members, so respawn revives two
  // processes.
  EXPECT_FALSE(router.PingAll());
  EXPECT_EQ(router.RespawnDead(), 2u);
  EXPECT_TRUE(router.PingAll());
  QueryStats ref;
  const auto want = dep.index->KNearest(w.queries[1], 3, &ref);
  ExpectHealthyIdentical(router.KNearest(w.queries[1], 3), want, ref,
                         "post-respawn");
}

TEST(ServeDistributedTest, UnresponsiveStepIsNeverRetriedAndDegrades) {
  Workload w = MakeWorkload(100, 2, 7400);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  // The worker swallows one Step: the router must not resend a mutating
  // op — the shard is degraded on the first timeout.
  opt.fault_spec = "drop:shard=1,op=step,nth=1";
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);
  const ServeResult r = router.Nearest(w.queries[0]);
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.missing_shards, std::vector<std::size_t>{1});
  EXPECT_FALSE(router.worker_alive(1));
}

TEST(ServeDistributedTest, UnresponsiveIdempotentOpIsRetriedTransparently) {
  Workload w = MakeWorkload(100, 4, 7500);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  // Dropped Eval and dropped BeginLazy replies: both are idempotent, so
  // the retry path must absorb them with no effect on the answer.
  opt.fault_spec = "drop:shard=1,op=eval,nth=1|drop:shard=3,op=begin,nth=1";
  ServeRouter router(dep.dir.path, opt);
  for (const auto& q : w.queries) {
    QueryStats ref;
    const auto want = dep.index->KNearest(q, 3, &ref);
    ExpectHealthyIdentical(router.KNearest(q, 3), want, ref,
                           "retried q=" + q);
  }
  EXPECT_TRUE(router.PingAll());
}

TEST(ServeDistributedTest, CorruptReplyIsTreatedAsDeadShard) {
  Workload w = MakeWorkload(100, 2, 7600);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  opt.fault_spec = "corrupt:shard=0,op=step,nth=1";
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);
  const ServeResult r = router.Nearest(w.queries[0]);
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.missing_shards, std::vector<std::size_t>{0});
  EXPECT_FALSE(router.worker_alive(0));
}

TEST(ServeDistributedTest, DeadlineExpiryReturnsFlaggedPartialIncumbents) {
  Workload w = MakeWorkload(200, 1, 7700);
  Deployment dep(w.protos, 4, 12);
  ServeOptions opt = FastOptions();
  // Every remote evaluation outsleeps the per-op window, so the retries
  // burn the whole budget: the sweep hits the deadline with candidates
  // still live and must hand back flagged incumbents, not block.
  opt.fault_spec = "delay:op=eval,ms=300";
  opt.query_deadline_ms = 250;
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);
  const ServeResult r = router.KNearest(w.queries[0], 5);
  EXPECT_TRUE(r.partial);
  EXPECT_FALSE(r.missing_shards.empty());
  EXPECT_EQ(r.stats.shards_degraded, r.missing_shards.size());
  // Whatever incumbents made it in before the deadline are exact.
  auto dist = MakeDistance("dE");
  for (const NeighborResult& nb : r.neighbors) {
    EXPECT_EQ(nb.distance, dist->Distance(w.queries[0], w.protos[nb.index]));
  }
}

TEST(ServeDistributedTest, CrashMidBatchCostsOneQueryAndAutoRespawns) {
  Workload w = MakeWorkload(120, 6, 7800);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  // The worker for shard 1 dies when query 3's BeginRow arrives; respawn
  // runs between queries, so exactly one answer in the batch is partial.
  opt.fault_spec = "crash:shard=1,op=begin,nth=3";
  ServeRouter router(dep.dir.path, opt);
  const auto got = router.KNearestBatch(w.queries, 3);
  ASSERT_EQ(got.size(), w.queries.size());
  std::vector<double> row(dep.index->pivot_count());
  std::size_t partials = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i].partial) {
      ++partials;
      EXPECT_EQ(got[i].missing_shards, std::vector<std::size_t>{1}) << i;
      continue;
    }
    QueryStats ref;
    dep.index->ComputePivotRow(w.queries[i], row.data(), &ref);
    const auto want =
        dep.index->KNearestWithPivotRow(w.queries[i], 3, row.data(), &ref);
    ExpectHealthyIdentical(got[i], want, ref, "batch q=" + w.queries[i]);
  }
  EXPECT_EQ(partials, 1u);
  EXPECT_TRUE(router.worker_alive(1));
}

TEST(ServeDistributedTest, KillNineOfWholeGroupIsSurvivedFlaggedAndRecovered) {
  Workload w = MakeWorkload(120, 5, 7900);
  Deployment dep(w.protos, 4, 8);
  ServeRouter router(dep.dir.path, FastOptions());

  QueryStats ref0;
  const auto want0 = dep.index->KNearest(w.queries[0], 3, &ref0);
  ExpectHealthyIdentical(router.KNearest(w.queries[0], 3), want0, ref0,
                         "pre-kill");

  // A real kill -9 of shard 2's *entire replica group*, not an injected
  // fault: the workers vanish between queries and the router finds out
  // mid-query from the dead sockets. With no member left to promote, the
  // shard degrades.
  std::vector<pid_t> victims;
  for (std::size_t r = 0; r < router.replica_count(); ++r) {
    const pid_t victim = router.replica_pid(2, r);
    ASSERT_GT(victim, 0);
    ASSERT_EQ(kill(victim, SIGKILL), 0);
    victims.push_back(victim);
  }

  const ServeResult during = router.KNearest(w.queries[1], 3);
  EXPECT_TRUE(during.partial);
  EXPECT_EQ(during.missing_shards, std::vector<std::size_t>{2});
  auto dist = MakeDistance("dE");
  for (const NeighborResult& nb : during.neighbors) {
    EXPECT_EQ(nb.distance, dist->Distance(w.queries[1], w.protos[nb.index]));
  }

  // auto_respawn brings shard 2 back for the next query: full bit-identity
  // again, under fresh pids.
  QueryStats ref2;
  const auto want2 = dep.index->KNearest(w.queries[2], 3, &ref2);
  ExpectHealthyIdentical(router.KNearest(w.queries[2], 3), want2, ref2,
                         "post-respawn");
  EXPECT_TRUE(router.worker_alive(2));
  EXPECT_NE(router.worker_pid(2), victims[0]);
}

// --- Contract 3: replica-group failover ------------------------------------

TEST(ServeDistributedTest, EveryPrimaryCrashedMidSweepStaysExactUnflagged) {
  Workload w = MakeWorkload(150, 3, 8400);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  // Each shard's *primary* (replica 0) crashes on its 2nd visit pass.
  // The standby holds bit-identical slab state, so every shard fails
  // over mid-sweep and the query must come back exact and unflagged.
  opt.fault_spec = "crash:op=step,nth=2,replica=0";
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);

  QueryStats ref;
  const auto want = dep.index->KNearest(w.queries[0], 3, &ref);
  const ServeResult r = router.KNearest(w.queries[0], 3);
  ExpectHealthyIdentical(r, want, ref, "mid-sweep failover");
  EXPECT_EQ(r.failovers, 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(router.primary_of(s), 1u) << "shard " << s;
    EXPECT_FALSE(router.replica_alive(s, 0)) << "shard " << s;
    EXPECT_TRUE(router.replica_alive(s, 1)) << "shard " << s;
  }

  // The promotion is durable: the next query runs on the standbys with no
  // further failovers (and no respawn ever happened).
  QueryStats ref1;
  const auto want1 = dep.index->KNearest(w.queries[1], 3, &ref1);
  const ServeResult r1 = router.KNearest(w.queries[1], 3);
  ExpectHealthyIdentical(r1, want1, ref1, "post-failover");
  EXPECT_EQ(r1.failovers, 0u);
}

TEST(ServeDistributedTest, EveryPrimaryCrashedMidBatchStaysExactUnflagged) {
  Workload w = MakeWorkload(150, 5, 8500);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  opt.fault_spec = "crash:op=step,nth=2,replica=0";
  ServeRouter router(dep.dir.path, opt);
  const auto got = router.KNearestBatch(w.queries, 3);
  ASSERT_EQ(got.size(), w.queries.size());
  std::vector<double> row(dep.index->pivot_count());
  std::size_t failovers = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    QueryStats ref;
    dep.index->ComputePivotRow(w.queries[i], row.data(), &ref);
    const auto want =
        dep.index->KNearestWithPivotRow(w.queries[i], 3, row.data(), &ref);
    ExpectHealthyIdentical(got[i], want, ref,
                           "batch failover q=" + w.queries[i]);
    failovers += got[i].failovers;
  }
  EXPECT_EQ(failovers, 4u);  // one promotion per shard, all in one query
}

TEST(ServeDistributedTest, RealKillNineOfPrimaryFailsOverMidQuery) {
  Workload w = MakeWorkload(120, 5, 8600);
  Deployment dep(w.protos, 4, 8);
  ServeRouter router(dep.dir.path, FastOptions());

  QueryStats ref0;
  const auto want0 = dep.index->KNearest(w.queries[0], 3, &ref0);
  ExpectHealthyIdentical(router.KNearest(w.queries[0], 3), want0, ref0,
                         "pre-kill");

  // A real kill -9 of shard 2's primary. The router has no idea until the
  // next query's scatter hits the dead socket — mid-query it promotes the
  // standby and the answer stays exact and unflagged.
  const pid_t victim = router.worker_pid(2);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(kill(victim, SIGKILL), 0);

  QueryStats ref1;
  const auto want1 = dep.index->KNearest(w.queries[1], 3, &ref1);
  const ServeResult during = router.KNearest(w.queries[1], 3);
  ExpectHealthyIdentical(during, want1, ref1, "kill -9 failover");
  EXPECT_GE(during.failovers, 1u);
  EXPECT_TRUE(router.worker_alive(2));
  EXPECT_NE(router.worker_pid(2), victim);

  // auto_respawn refills the group between queries; the revived process
  // rejoins at the next begin and the group is back to full strength.
  QueryStats ref2;
  const auto want2 = dep.index->KNearest(w.queries[2], 3, &ref2);
  ExpectHealthyIdentical(router.KNearest(w.queries[2], 3), want2, ref2,
                         "post-respawn");
  EXPECT_TRUE(router.PingAll());
  for (std::size_t r = 0; r < router.replica_count(); ++r) {
    EXPECT_TRUE(router.replica_alive(2, r)) << "replica " << r;
  }
}

TEST(ServeDistributedTest, SlowPrimaryEvalsAreHedgedToTheStandby) {
  Workload w = MakeWorkload(120, 2, 8700);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  // Shard 1's primary answers Evals 100ms late — well inside the op
  // timeout, so without hedging the query would simply crawl. With a
  // 10ms hedge delay the router races each such Eval to the standby and
  // takes its (identical) answer; nobody dies, nothing degrades.
  opt.fault_spec = "delay:shard=1,op=eval,replica=0,ms=100";
  opt.hedge_delay_ms = 10;
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);

  std::size_t hedged = 0;
  for (const auto& q : w.queries) {
    QueryStats ref;
    const auto want = dep.index->KNearest(q, 3, &ref);
    const ServeResult r = router.KNearest(q, 3);
    ExpectHealthyIdentical(r, want, ref, "hedged q=" + q);
    EXPECT_EQ(r.failovers, 0u);
    EXPECT_EQ(r.replicas_evicted, 0u);
    hedged += r.hedged_evals;
  }
  EXPECT_GT(hedged, 0u);
  // Hedging is a race, not a verdict: the slow primary keeps its job.
  EXPECT_TRUE(router.replica_alive(1, 0));
  EXPECT_TRUE(router.replica_alive(1, 1));
  EXPECT_EQ(router.primary_of(1), 0u);
}

TEST(ServeDistributedTest, DisagreeingStandbyIsEvictedAndQueryStaysExact) {
  Workload w = MakeWorkload(120, 2, 8800);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  // Shard 2's *standby* mangles its 3rd visit-pass reply: byte-wrong but
  // CRC-valid, so only the router's replica agreement check can catch
  // it. The primary's reply drives the merge — the answer stays exact —
  // and the corrupt standby is evicted.
  opt.fault_spec = "mangle:shard=2,op=step,nth=3,replica=1";
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);

  QueryStats ref;
  const auto want = dep.index->KNearest(w.queries[0], 3, &ref);
  const ServeResult r = router.KNearest(w.queries[0], 3);
  ExpectHealthyIdentical(r, want, ref, "mangled standby");
  EXPECT_EQ(r.replicas_evicted, 1u);
  EXPECT_EQ(r.failovers, 0u);
  EXPECT_TRUE(router.replica_alive(2, 0));
  EXPECT_FALSE(router.replica_alive(2, 1));
  EXPECT_EQ(router.primary_of(2), 0u);
}

TEST(ServeDistributedTest, AllShardsDeadReturnsAllMissingAscending) {
  Workload w = MakeWorkload(100, 2, 8900);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  // Every replica of every shard crashes on its first begin: the whole
  // fleet is gone. Lazy path: nothing survives, every shard is named,
  // ascending. Row path: the pivot evaluations run router-side, so the
  // answer still holds exact pivot incumbents.
  opt.fault_spec = "crash:op=begin,nth=1";
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);

  const ServeResult lazy = router.KNearest(w.queries[0], 3);
  EXPECT_TRUE(lazy.partial);
  EXPECT_EQ(lazy.missing_shards, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(lazy.stats.shards_degraded, 4u);
  EXPECT_TRUE(lazy.neighbors.empty());

  // Fresh router (the first one's fleet is dead and stays dead).
  ServeRouter router2(dep.dir.path, opt);
  const auto batch = router2.KNearestBatch({w.queries[1]}, 3);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch[0].partial);
  EXPECT_EQ(batch[0].missing_shards, (std::vector<std::size_t>{0, 1, 2, 3}));
  auto dist = MakeDistance("dE");
  for (const NeighborResult& nb : batch[0].neighbors) {
    EXPECT_EQ(nb.distance, dist->Distance(w.queries[1], w.protos[nb.index]));
  }
}

TEST(ServeDistributedTest, HealthLoopRevivesKilledReplicasInBackground) {
  Workload w = MakeWorkload(100, 2, 9000);
  Deployment dep(w.protos, 2, 6);
  ServeOptions opt = FastOptions();
  // Synchronous respawn off: only the background health loop can bring
  // the killed group back.
  opt.auto_respawn = false;
  opt.health_interval_ms = 25;
  ServeRouter router(dep.dir.path, opt);

  QueryStats ref0;
  const auto want0 = dep.index->KNearest(w.queries[0], 3, &ref0);
  ExpectHealthyIdentical(router.KNearest(w.queries[0], 3), want0, ref0,
                         "pre-kill");

  for (std::size_t r = 0; r < router.replica_count(); ++r) {
    const pid_t victim = router.replica_pid(1, r);
    ASSERT_GT(victim, 0);
    ASSERT_EQ(kill(victim, SIGKILL), 0);
  }

  // The loop pings (failure detection), reaps, respawns, re-pings. Give
  // it a generous window; the test only needs eventual recovery.
  bool healthy = false;
  for (int i = 0; i < 400 && !healthy; ++i) {
    healthy = router.replica_alive(1, 0) && router.replica_alive(1, 1) &&
              router.PingAll();
    if (!healthy) usleep(20 * 1000);
  }
  EXPECT_TRUE(healthy);
  QueryStats ref1;
  const auto want1 = dep.index->KNearest(w.queries[1], 3, &ref1);
  ExpectHealthyIdentical(router.KNearest(w.queries[1], 3), want1, ref1,
                         "post-revival");
}

TEST(ServeDistributedTest, UnreplicatedTierStillServesExactlyAtROne) {
  Workload w = MakeWorkload(100, 3, 9100);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  opt.replicas = 1;
  ServeRouter router(dep.dir.path, opt);
  ASSERT_EQ(router.replica_count(), 1u);
  for (const auto& q : w.queries) {
    QueryStats ref;
    const auto want = dep.index->KNearest(q, 3, &ref);
    const ServeResult r = router.KNearest(q, 3);
    ExpectHealthyIdentical(r, want, ref, "R=1 q=" + q);
    EXPECT_EQ(r.failovers, 0u);
    EXPECT_EQ(r.hedged_evals, 0u);
  }
}

// --- Satellite: option validation ------------------------------------------

TEST(ServeDistributedTest, InvalidOptionsThrowNamingTheField) {
  Workload w = MakeWorkload(40, 1, 9200);
  Deployment dep(w.protos, 2, 4);
  auto expect_invalid = [&](ServeOptions opt, const std::string& field) {
    try {
      ServeRouter router(dep.dir.path, opt);
      FAIL() << "expected std::invalid_argument for " << field;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << "message '" << e.what() << "' does not name " << field;
    }
  };
  ServeOptions opt = FastOptions();
  opt.replicas = 0;
  expect_invalid(opt, "replicas");
  opt = FastOptions();
  opt.op_timeout_ms = 0;
  expect_invalid(opt, "op_timeout_ms");
  opt = FastOptions();
  opt.query_deadline_ms = -5;
  expect_invalid(opt, "query_deadline_ms");
  opt = FastOptions();
  opt.op_retries = -1;
  expect_invalid(opt, "op_retries");
  opt = FastOptions();
  opt.backoff_base_ms = -1;
  expect_invalid(opt, "backoff_base_ms");
  opt = FastOptions();
  opt.health_interval_ms = -1;
  expect_invalid(opt, "health_interval_ms");
  opt = FastOptions();
  opt.distance = "";
  expect_invalid(opt, "distance");
}

// --- Satellite: degraded-mode determinism ----------------------------------

void ExpectSameServeResult(const ServeResult& a, const ServeResult& b,
                           const std::string& context) {
  EXPECT_EQ(a.partial, b.partial) << context;
  EXPECT_EQ(a.missing_shards, b.missing_shards) << context;
  EXPECT_TRUE(a.stats == b.stats) << context;
  ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << context;
  for (std::size_t i = 0; i < a.neighbors.size(); ++i) {
    EXPECT_EQ(a.neighbors[i].index, b.neighbors[i].index) << context;
    EXPECT_EQ(a.neighbors[i].distance, b.neighbors[i].distance) << context;
  }
}

TEST(ServeDistributedTest, DegradedLazyResultsAreDeterministicAcrossRuns) {
  Workload w = MakeWorkload(140, 5, 8000);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  // A mixed schedule: one crash and one swallowed mutating op. Counted
  // per directive, the schedule is a pure function of the request
  // sequence — so two fresh routers over the same queries must degrade
  // identically, down to the stats.
  opt.fault_spec = "crash:shard=2,op=step,nth=4|drop:shard=0,op=step,nth=6";
  opt.respawn_fault_spec = "";
  auto run = [&]() {
    ServeRouter router(dep.dir.path, opt);
    std::vector<ServeResult> out;
    for (const auto& q : w.queries) out.push_back(router.KNearest(q, 3));
    return out;
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  std::size_t partials = 0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    ExpectSameServeResult(first[i], second[i],
                          "lazy run q=" + w.queries[i]);
    partials += first[i].partial ? 1 : 0;
  }
  EXPECT_GT(partials, 0u);  // the schedule really fired
}

TEST(ServeDistributedTest, DegradedBatchResultsAreDeterministicAcrossRuns) {
  Workload w = MakeWorkload(140, 6, 8100);
  Deployment dep(w.protos, 4, 8);
  ServeOptions opt = FastOptions();
  opt.fault_spec = "crash:shard=3,op=begin,nth=2";
  auto run = [&]() {
    ServeRouter router(dep.dir.path, opt);
    return router.KNearestBatch(w.queries, 3);
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  std::size_t partials = 0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    ExpectSameServeResult(first[i], second[i],
                          "batch run q=" + w.queries[i]);
    partials += first[i].partial ? 1 : 0;
  }
  EXPECT_EQ(partials, 1u);
}

// --- Snapshot-level robustness ---------------------------------------------

TEST(ServeDistributedTest, CorruptShardSnapshotNeverServes) {
  Workload w = MakeWorkload(80, 2, 8200);
  Deployment dep(w.protos, 2, 6);
  // Flip one payload byte in shard 1's index slice: its worker must fail
  // the pre-map checksum pass and answer with errors, degrading the shard
  // — corrupted bytes are never silently merged into results.
  {
    const std::string path = ShardIndexPath(dep.dir.path, 1);
    FILE* f = fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    fseek(f, 200, SEEK_SET);
    int c = fgetc(f);
    fseek(f, 200, SEEK_SET);
    fputc(c ^ 0x40, f);
    fclose(f);
  }
  ServeOptions opt = FastOptions();
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);
  const ServeResult r = router.Nearest(w.queries[0]);
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.missing_shards, std::vector<std::size_t>{1});
}

TEST(ServeDistributedTest, ExecFormWorkerBinaryServesIdentically) {
  // The fork+exec deployment form (ServeOptions::worker_binary) must be
  // the same protocol peer as the default in-process fork. The built
  // `cned_shard_worker` sits next to this test binary.
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) GTEST_SKIP() << "cannot resolve own binary path";
  const auto bin = self.parent_path() / "cned_shard_worker";
  if (!std::filesystem::exists(bin)) {
    GTEST_SKIP() << "cned_shard_worker not built";
  }
  Workload w = MakeWorkload(100, 4, 8300);
  Deployment dep(w.protos, 3, 8);
  ServeOptions opt = FastOptions();
  opt.worker_binary = bin.string();
  ServeRouter router(dep.dir.path, opt);
  for (const auto& q : w.queries) {
    QueryStats ref;
    const auto want = dep.index->KNearest(q, 3, &ref);
    ExpectHealthyIdentical(router.KNearest(q, 3), want, ref,
                           "exec q=" + q);
  }
}

TEST(ServeDistributedTest, RouterRejectsMissingManifest) {
  TempDir empty;
  EXPECT_THROW(ServeRouter(empty.path, FastOptions()), std::exception);
}

// --- Satellite: retry waits are gated by the query deadline -----------------

TEST(ServeDistributedTest, DeadlineGatesRetryWaitsToQueryBudget) {
  // Every begin is swallowed and the per-op timeout (4s) dwarfs the query
  // deadline (200ms). SendRecv used to check the deadline only *after* a
  // full op-timeout recv window and still slept + resent once the budget
  // was gone, so this query burned multiple op timeouts past its deadline.
  // The fix caps every recv window by the remaining budget and refuses to
  // back off or resend once it is spent: the query must come back (flagged
  // partial) in deadline-order time, not op-timeout-order time.
  Workload w = MakeWorkload(80, 1, 9300);
  Deployment dep(w.protos, 2, 6);
  ServeOptions opt = FastOptions();
  opt.fault_spec = "drop:op=begin";
  opt.op_timeout_ms = 4000;
  opt.op_retries = 2;
  opt.backoff_base_ms = 0;
  opt.query_deadline_ms = 200;
  opt.auto_respawn = false;
  ServeRouter router(dep.dir.path, opt);

  const auto t0 = std::chrono::steady_clock::now();
  const ServeResult r = router.KNearest(w.queries[0], 3);
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.missing_shards.size(), 2u);
  // Generous slop for CI, still an order of magnitude under one op timeout.
  EXPECT_LT(elapsed_ms, 1500) << "deadline did not gate the retry waits";
}

// --- The mutable tier over the wire -----------------------------------------

/// Distance-exactness oracle for a mutated deployment: the same contract
/// the flat mutable tier pins (tests/mutable_laesa_test.cc) — exact
/// distance profile rank for rank vs brute force over the live map, only
/// live ids, reported distances true, no duplicates. Tie winners follow
/// sweep order, so ids are not pinned on tied ranks.
void ExpectServesLiveOracle(const ServeResult& got,
                            const std::map<std::uint64_t, std::string>& live,
                            const StringDistance& dist, const std::string& q,
                            std::size_t k, const std::string& ctx) {
  EXPECT_FALSE(got.partial) << ctx;
  std::vector<NeighborResult> want;
  for (const auto& [id, s] : live) {
    want.push_back({static_cast<std::size_t>(id), dist.Distance(q, s)});
  }
  std::sort(want.begin(), want.end(), NeighborLess);
  if (want.size() > k) want.resize(k);
  ASSERT_EQ(got.neighbors.size(), want.size()) << ctx;
  std::vector<std::size_t> seen;
  for (std::size_t i = 0; i < want.size(); ++i) {
    const NeighborResult& nb = got.neighbors[i];
    EXPECT_EQ(nb.distance, want[i].distance) << ctx << " rank " << i;
    const auto it = live.find(nb.index);
    ASSERT_NE(it, live.end())
        << ctx << " rank " << i << " returned dead/unknown id " << nb.index;
    EXPECT_EQ(nb.distance, dist.Distance(q, it->second)) << ctx << " rank "
                                                         << i;
    EXPECT_EQ(std::count(seen.begin(), seen.end(), nb.index), 0)
        << ctx << " duplicate id " << nb.index;
    seen.push_back(nb.index);
  }
}

TEST(ServeDistributedTest, MutationsServeExactlyOnBothPathsReplicated) {
  Workload w = MakeWorkload(120, 5, 9400);
  Deployment dep(w.protos, 4, 8);
  ServeRouter router(dep.dir.path, FastOptions());  // default R=2
  auto dist = MakeDistance("dE");

  std::map<std::uint64_t, std::string> live;
  for (std::size_t i = 0; i < w.protos.size(); ++i) live[i] = w.protos[i];

  // Inserts land in per-shard deltas, round-robin by id.
  for (int i = 0; i < 10; ++i) {
    const std::string s = w.protos[i * 7] + "+" + std::to_string(i);
    const std::uint64_t id = router.Insert(s);
    EXPECT_EQ(id, w.protos.size() + i);
    live[id] = s;
  }
  // Insert-only: the base stays unmasked, only the delta phase runs.
  for (const auto& q : w.queries) {
    ExpectServesLiveOracle(router.KNearest(q, 5), live, *dist, q, 5,
                           "delta-only lazy q=" + q);
  }

  // Removes: base ids (0 is a shard pivot), plus one delta id — with dedup
  // and unknown-id rejection.
  for (const std::uint64_t id :
       {std::uint64_t{0}, std::uint64_t{5}, std::uint64_t{61},
        std::uint64_t{w.protos.size() + 2}}) {
    EXPECT_TRUE(router.Remove(id)) << id;
    live.erase(id);
  }
  EXPECT_FALSE(router.Remove(0)) << "double remove must dedup";
  EXPECT_FALSE(router.Remove(w.protos.size() + 1000)) << "unknown id";
  EXPECT_EQ(router.live_size(), live.size());
  EXPECT_EQ(router.next_insert_id(), w.protos.size() + 10);

  for (const auto& q : w.queries) {
    // Masked lazy path (tombstoned base + delta)...
    ExpectServesLiveOracle(router.KNearest(q, 5), live, *dist, q, 5,
                           "masked lazy q=" + q);
    // ...and the top-1 special case.
    ExpectServesLiveOracle(router.Nearest(q), live, *dist, q, 1,
                           "masked nearest q=" + q);
  }
  // The pivot-row path masks too — including the removed pivot id 0, which
  // must be skipped as a seed but never returned.
  const auto batch = router.KNearestBatch(w.queries, 5);
  ASSERT_EQ(batch.size(), w.queries.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ExpectServesLiveOracle(batch[i], live, *dist, w.queries[i], 5,
                           "masked row q=" + w.queries[i]);
  }
  EXPECT_TRUE(router.PingAll());
}

TEST(ServeDistributedTest, MutationsServeExactlyAtROne) {
  Workload w = MakeWorkload(80, 4, 9500);
  Deployment dep(w.protos, 2, 6);
  ServeOptions opt = FastOptions();
  opt.replicas = 1;
  ServeRouter router(dep.dir.path, opt);
  auto dist = MakeDistance("dE");

  std::map<std::uint64_t, std::string> live;
  for (std::size_t i = 0; i < w.protos.size(); ++i) live[i] = w.protos[i];
  for (int i = 0; i < 6; ++i) {
    const std::string s = w.protos[i * 5] + "~" + std::to_string(i);
    live[router.Insert(s)] = s;
  }
  for (const std::uint64_t id : {std::uint64_t{3}, std::uint64_t{40},
                                 std::uint64_t{w.protos.size()}}) {
    ASSERT_TRUE(router.Remove(id));
    live.erase(id);
  }
  EXPECT_EQ(router.live_size(), live.size());
  for (const auto& q : w.queries) {
    ExpectServesLiveOracle(router.KNearest(q, 4), live, *dist, q, 4,
                           "R=1 lazy q=" + q);
  }
  const auto batch = router.KNearestBatch(w.queries, 4);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ExpectServesLiveOracle(batch[i], live, *dist, w.queries[i], 4,
                           "R=1 row q=" + w.queries[i]);
  }
}

TEST(ServeDistributedTest, RespawnedReplicaReplaysJournalBeforeRejoining) {
  Workload w = MakeWorkload(100, 4, 9600);
  Deployment dep(w.protos, 2, 6);
  ServeRouter router(dep.dir.path, FastOptions());
  auto dist = MakeDistance("dE");

  std::map<std::uint64_t, std::string> live;
  for (std::size_t i = 0; i < w.protos.size(); ++i) live[i] = w.protos[i];
  for (int i = 0; i < 8; ++i) {
    const std::string s = w.protos[i * 9] + "#" + std::to_string(i);
    live[router.Insert(s)] = s;
  }
  ASSERT_TRUE(router.Remove(7));
  live.erase(7);

  // Kill shard 0's standby. It missed nothing yet — but the next mutation
  // only reaches the survivors, so the journal is now the sole record.
  const pid_t standby = router.replica_pid(0, 1);
  ASSERT_GT(standby, 0);
  ASSERT_EQ(kill(standby, SIGKILL), 0);
  const std::string after_kill = w.protos[3] + "#late";
  live[router.Insert(after_kill)] = after_kill;
  ASSERT_TRUE(router.Remove(11));
  live.erase(11);

  // A query routes around the corpse; the respawn then must replay the
  // whole journal into the fresh process before it rejoins the group.
  ExpectServesLiveOracle(router.KNearest(w.queries[0], 4), live, *dist,
                         w.queries[0], 4, "around the corpse");
  router.RespawnDead();
  ASSERT_TRUE(router.PingAll());

  // Promote the replayed replica the hard way: kill the primary. If the
  // replay was incomplete the standby would now serve a stale world —
  // missing #late, resurrecting id 11 — and the oracle check would catch
  // either.
  const pid_t primary = router.replica_pid(0, 0);
  ASSERT_GT(primary, 0);
  ASSERT_EQ(kill(primary, SIGKILL), 0);
  for (const auto& q : w.queries) {
    ExpectServesLiveOracle(router.KNearest(q, 4), live, *dist, q, 4,
                           "replayed standby q=" + q);
  }
  EXPECT_EQ(router.live_size(), live.size());
}

TEST(ServeDistributedTest, MutatedTierStaysExactAcrossPrecisionsAndKernels) {
  // The tombstone mask writes +inf into the lower-bound slab *after*
  // dequantization, so the admissible-rounding guarantee must survive at
  // every table precision, under every compiled kernel — now over the
  // wire. Workers are forked, so the active kernel is set before the
  // router spawns them.
  Workload w = MakeWorkload(60, 3, 9700);
  auto dist = MakeDistance("dE");
  const std::string saved_kernel = ActiveSweepKernels().name;
  for (const TablePrecision precision :
       {TablePrecision::kF32, TablePrecision::kU8}) {
    Deployment dep(w.protos, 2, 6, precision);
    for (const SweepKernels* kern : AvailableSweepKernels()) {
      ASSERT_TRUE(SetActiveSweepKernels(kern->name));
      ServeRouter router(dep.dir.path, FastOptions());
      const std::string ctx = std::string("precision ") +
                              std::to_string(static_cast<int>(precision)) +
                              " kernel " + kern->name;

      std::map<std::uint64_t, std::string> live;
      for (std::size_t i = 0; i < w.protos.size(); ++i) live[i] = w.protos[i];
      for (int i = 0; i < 4; ++i) {
        const std::string s = w.protos[i * 11] + "^" + std::to_string(i);
        live[router.Insert(s)] = s;
      }
      for (const std::uint64_t id : {std::uint64_t{0}, std::uint64_t{13},
                                     std::uint64_t{w.protos.size() + 1}}) {
        ASSERT_TRUE(router.Remove(id)) << ctx;
        live.erase(id);
      }
      for (const auto& q : w.queries) {
        ExpectServesLiveOracle(router.KNearest(q, 3), live, *dist, q, 3,
                               ctx + " lazy q=" + q);
      }
      const auto batch = router.KNearestBatch({w.queries[0]}, 3);
      ASSERT_EQ(batch.size(), 1u);
      ExpectServesLiveOracle(batch[0], live, *dist, w.queries[0], 3,
                             ctx + " row");
    }
  }
  ASSERT_TRUE(SetActiveSweepKernels(saved_kernel));
}

}  // namespace
}  // namespace cned
