#include "distances/generalized_yujian_bo.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "distances/normalized.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(GeneralizedYujianBoTest, UnitCostsAlphaOneReducesToDyb) {
  UnitCosts unit;
  Rng rng(1601);
  Alphabet ab("abc");
  for (int t = 0; t < 200; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 12);
    std::string y = StringGen::UniformLength(rng, ab, 0, 12);
    EXPECT_NEAR(GeneralizedYujianBoDistance(x, y, unit, 1.0),
                DybDistance(x, y), 1e-12)
        << "x=" << x << " y=" << y;
  }
}

TEST(GeneralizedYujianBoTest, RangeZeroOne) {
  // With alpha >= max indel weight the value stays in [0, 1].
  MatrixCosts costs = MatrixCosts::Uniform(Alphabet::Dna(), 1.5, 0.8, 0.8);
  Rng rng(1602);
  Alphabet dna = Alphabet::Dna();
  for (int t = 0; t < 200; ++t) {
    std::string x = StringGen::UniformLength(rng, dna, 0, 15);
    std::string y = StringGen::UniformLength(rng, dna, 0, 15);
    double d = GeneralizedYujianBoDistance(x, y, costs, 0.8);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0 + 1e-12);
  }
}

TEST(GeneralizedYujianBoTest, MetricForMetricCosts) {
  // Substitution 1, indels 0.75, alpha = 0.75: the weight function is a
  // metric (symmetric, identity, triangle holds since sub <= ins + del),
  // so Yujian & Bo's theorem applies; verify the triangle inequality
  // empirically over random triples.
  MatrixCosts costs = MatrixCosts::Uniform(Alphabet("ab"), 1.0, 0.75, 0.75);
  Rng rng(1603);
  Alphabet ab("ab");
  for (int t = 0; t < 400; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 9);
    std::string y = StringGen::UniformLength(rng, ab, 0, 9);
    std::string z = StringGen::UniformLength(rng, ab, 0, 9);
    double xz = GeneralizedYujianBoDistance(x, z, costs, 0.75);
    double xy = GeneralizedYujianBoDistance(x, y, costs, 0.75);
    double yz = GeneralizedYujianBoDistance(y, z, costs, 0.75);
    EXPECT_LE(xz, xy + yz + 1e-9) << "x=" << x << " y=" << y << " z=" << z;
  }
}

TEST(GeneralizedYujianBoTest, IdentityAndSymmetry) {
  MatrixCosts costs = MatrixCosts::Uniform(Alphabet("abc"), 2.0, 1.0, 1.0);
  Rng rng(1604);
  Alphabet ab("abc");
  for (int t = 0; t < 100; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 10);
    std::string y = StringGen::UniformLength(rng, ab, 0, 10);
    EXPECT_DOUBLE_EQ(GeneralizedYujianBoDistance(x, x, costs, 1.0), 0.0);
    EXPECT_NEAR(GeneralizedYujianBoDistance(x, y, costs, 1.0),
                GeneralizedYujianBoDistance(y, x, costs, 1.0), 1e-12);
  }
}

TEST(GeneralizedYujianBoTest, RejectsNonPositiveAlpha) {
  UnitCosts unit;
  EXPECT_THROW(GeneralizedYujianBoDistance("a", "b", unit, 0.0),
               std::invalid_argument);
  EXPECT_THROW(GeneralizedYujianBoDistance("a", "b", unit, -1.0),
               std::invalid_argument);
}

TEST(GeneralizedYujianBoMetricAdapterTest, Metadata) {
  auto costs = std::make_shared<UnitCosts>();
  GeneralizedYujianBoMetric d(costs, 1.0, /*costs_are_metric=*/true);
  EXPECT_EQ(d.name(), "dgYB");
  EXPECT_TRUE(d.is_metric());
  EXPECT_DOUBLE_EQ(d.alpha(), 1.0);
  EXPECT_NEAR(d.Distance("aaaa", "bbbb"), 2.0 / 3.0, 1e-12);
  EXPECT_THROW(GeneralizedYujianBoMetric(costs, 0.0, true),
               std::invalid_argument);
}

}  // namespace
}  // namespace cned
