#include "search/pivot_selection.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "distances/registry.h"

namespace cned {
namespace {

TEST(PivotSelectionTest, MaxMinPicksOutlyingPrototypes) {
  // Cluster of similar words + two far outliers: the greedy max-min
  // strategy must pick up the outliers early.
  std::vector<std::string> protos{"aaaa",        "aaab",     "aaba",
                                  "abaa",        "baaa",     "zzzzzzzzzz",
                                  "qqqqqqqqqqqq"};
  auto dist = MakeDistance("dE");
  auto pivots = SelectPivotsMaxMin(protos, *dist, 3, /*first=*/0);
  ASSERT_EQ(pivots.size(), 3u);
  EXPECT_EQ(pivots[0], 0u);
  std::set<std::size_t> chosen(pivots.begin(), pivots.end());
  EXPECT_TRUE(chosen.count(5) == 1 || chosen.count(6) == 1);
}

TEST(PivotSelectionTest, PivotsAreDistinct) {
  std::vector<std::string> protos{"a", "ab", "abc", "abcd", "abcde"};
  auto dist = MakeDistance("dE");
  auto pivots = SelectPivotsMaxMin(protos, *dist, 5);
  std::set<std::size_t> uniq(pivots.begin(), pivots.end());
  EXPECT_EQ(uniq.size(), pivots.size());
}

TEST(PivotSelectionTest, StopsEarlyOnDuplicatePrototypes) {
  // Only two distinct strings: asking for 4 pivots must not loop or pick a
  // duplicate at distance zero.
  std::vector<std::string> protos{"aa", "aa", "bb", "bb"};
  auto dist = MakeDistance("dE");
  auto pivots = SelectPivotsMaxMin(protos, *dist, 4);
  EXPECT_LE(pivots.size(), 2u);
}

TEST(PivotSelectionTest, ValidatesArguments) {
  std::vector<std::string> protos{"a", "b"};
  auto dist = MakeDistance("dE");
  EXPECT_THROW(SelectPivotsMaxMin(protos, *dist, 3), std::invalid_argument);
  EXPECT_THROW(SelectPivotsMaxMin(protos, *dist, 1, /*first=*/5),
               std::invalid_argument);
}

TEST(PivotSelectionTest, RandomPivotsValidAndDistinct) {
  Rng rng(91);
  auto pivots = SelectPivotsRandom(50, 10, rng);
  EXPECT_EQ(pivots.size(), 10u);
  std::set<std::size_t> uniq(pivots.begin(), pivots.end());
  EXPECT_EQ(uniq.size(), 10u);
  EXPECT_TRUE(std::all_of(pivots.begin(), pivots.end(),
                          [](std::size_t p) { return p < 50; }));
}

TEST(PivotSelectionTest, RandomRejectsOversizedRequest) {
  Rng rng(92);
  EXPECT_THROW(SelectPivotsRandom(5, 6, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cned
