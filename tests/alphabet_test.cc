#include "strings/alphabet.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace cned {
namespace {

TEST(AlphabetTest, BasicMembership) {
  Alphabet a("abc");
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.Contains('a'));
  EXPECT_TRUE(a.Contains('c'));
  EXPECT_FALSE(a.Contains('d'));
}

TEST(AlphabetTest, DeduplicatesKeepingFirstSeenOrder) {
  Alphabet a("abca");
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.symbols(), "abc");
}

TEST(AlphabetTest, IndexMapping) {
  Alphabet a("xyz");
  EXPECT_EQ(a.IndexOf('x'), 0);
  EXPECT_EQ(a.IndexOf('z'), 2);
  EXPECT_EQ(a.IndexOf('a'), -1);
  EXPECT_EQ(a.symbol(1), 'y');
}

TEST(AlphabetTest, EmptyThrows) {
  EXPECT_THROW(Alphabet(""), std::invalid_argument);
}

TEST(AlphabetTest, ContainsAll) {
  Alphabet a = Alphabet::Dna();
  EXPECT_TRUE(a.ContainsAll("GATTACA"));
  EXPECT_FALSE(a.ContainsAll("GATTAXA"));
  EXPECT_TRUE(a.ContainsAll(""));
}

TEST(AlphabetTest, StandardAlphabets) {
  EXPECT_EQ(Alphabet::Latin().size(), 26u);
  EXPECT_EQ(Alphabet::Dna().size(), 4u);
  EXPECT_EQ(Alphabet::ChainCode().size(), 8u);
  EXPECT_TRUE(Alphabet::ChainCode().Contains('0'));
  EXPECT_TRUE(Alphabet::ChainCode().Contains('7'));
  EXPECT_FALSE(Alphabet::ChainCode().Contains('8'));
}

}  // namespace
}  // namespace cned
