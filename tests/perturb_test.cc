#include "datasets/perturb.h"

#include <gtest/gtest.h>

#include "distances/levenshtein.h"

namespace cned {
namespace {

TEST(PerturbTest, ZeroOperationsIsIdentity) {
  Rng rng(301);
  Alphabet latin = Alphabet::Latin();
  EXPECT_EQ(PerturbString("palabra", 0, latin, rng), "palabra");
}

TEST(PerturbTest, EditDistanceBoundedByOperations) {
  Rng rng(302);
  Alphabet latin = Alphabet::Latin();
  for (int t = 0; t < 200; ++t) {
    std::string q = PerturbString("dictionary", 2, latin, rng);
    EXPECT_LE(LevenshteinDistance("dictionary", q), 2u);
  }
}

TEST(PerturbTest, StaysInAlphabet) {
  Rng rng(303);
  Alphabet dna = Alphabet::Dna();
  for (int t = 0; t < 100; ++t) {
    std::string q = PerturbString("GATTACA", 3, dna, rng);
    EXPECT_TRUE(dna.ContainsAll(q));
  }
}

TEST(PerturbTest, EmptyStringOnlyInserts) {
  Rng rng(304);
  Alphabet ab("ab");
  std::string q = PerturbString("", 3, ab, rng);
  EXPECT_EQ(q.size(), 3u);
}

TEST(MakeQueriesTest, CountAndPerturbation) {
  Rng rng(305);
  Alphabet latin = Alphabet::Latin();
  std::vector<std::string> base{"uno", "dos", "tres"};
  auto queries = MakeQueries(base, 50, 2, latin, rng);
  EXPECT_EQ(queries.size(), 50u);
  for (const auto& q : queries) {
    std::size_t best = 100;
    for (const auto& b : base) best = std::min(best, LevenshteinDistance(b, q));
    EXPECT_LE(best, 2u);
  }
}

TEST(MakeQueriesTest, EmptyBaseThrows) {
  Rng rng(306);
  Alphabet ab("ab");
  std::vector<std::string> empty;
  EXPECT_THROW(MakeQueries(empty, 5, 2, ab, rng), std::invalid_argument);
}

TEST(MakeQueriesTest, Deterministic) {
  Alphabet ab("abc");
  std::vector<std::string> base{"abc", "cba"};
  Rng r1(307), r2(307);
  EXPECT_EQ(MakeQueries(base, 20, 2, ab, r1), MakeQueries(base, 20, 2, ab, r2));
}

}  // namespace
}  // namespace cned
