#include "distances/myers.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "distances/levenshtein.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(MyersTest, ClassicValues) {
  EXPECT_EQ(MyersLevenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(MyersLevenshtein("abaa", "aab"), 2u);
  EXPECT_EQ(MyersLevenshtein("", ""), 0u);
  EXPECT_EQ(MyersLevenshtein("", "abc"), 3u);
  EXPECT_EQ(MyersLevenshtein("abc", ""), 3u);
  EXPECT_EQ(MyersLevenshtein("same", "same"), 0u);
}

TEST(MyersTest, MatchesDpOnShortStrings) {
  Rng rng(1201);
  Alphabet ab("abcd");
  for (int t = 0; t < 500; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 30);
    std::string y = StringGen::UniformLength(rng, ab, 0, 30);
    EXPECT_EQ(MyersLevenshtein(x, y), LevenshteinDistance(x, y))
        << "x=" << x << " y=" << y;
  }
}

TEST(MyersTest, MatchesDpAroundWordBoundary) {
  // Pattern lengths 63, 64, 65 exercise the single-word/blocked switch and
  // the last-block high-bit handling.
  Rng rng(1202);
  Alphabet ab("ab");
  for (std::size_t m : {62u, 63u, 64u, 65u, 66u, 127u, 128u, 129u}) {
    for (int t = 0; t < 25; ++t) {
      std::string x = StringGen::Uniform(rng, ab, m);
      std::string y = StringGen::UniformLength(rng, ab, m / 2, m * 2);
      EXPECT_EQ(MyersLevenshtein(x, y), LevenshteinDistance(x, y))
          << "m=" << m;
    }
  }
}

TEST(MyersTest, MatchesDpOnLongMultiBlockStrings) {
  Rng rng(1203);
  Alphabet ab("ACGT");
  for (int t = 0; t < 20; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 200, 500);
    std::string y = StringGen::UniformLength(rng, ab, 200, 500);
    EXPECT_EQ(MyersLevenshtein(x, y), LevenshteinDistance(x, y));
  }
}

TEST(MyersTest, SymmetricInArguments) {
  Rng rng(1204);
  Alphabet ab("abc");
  for (int t = 0; t < 100; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 100);
    std::string y = StringGen::UniformLength(rng, ab, 0, 100);
    EXPECT_EQ(MyersLevenshtein(x, y), MyersLevenshtein(y, x));
  }
}

TEST(MyersTest, HighSimilarityAndDisjointExtremes) {
  std::string a(300, 'a');
  std::string b(300, 'b');
  EXPECT_EQ(MyersLevenshtein(a, b), 300u);
  EXPECT_EQ(MyersLevenshtein(a, a), 0u);
  std::string a_mut = a;
  a_mut[150] = 'b';
  EXPECT_EQ(MyersLevenshtein(a, a_mut), 1u);
}

TEST(FastEditDistanceTest, AdapterMetadataAndValue) {
  FastEditDistance d;
  EXPECT_TRUE(d.is_metric());
  EXPECT_DOUBLE_EQ(d.Distance("kitten", "sitting"), 3.0);
  EXPECT_EQ(d.name(), "dE(bitparallel)");
}

}  // namespace
}  // namespace cned
