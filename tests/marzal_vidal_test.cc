#include "distances/marzal_vidal.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "distances/levenshtein.h"
#include "distances/normalized.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(MarzalVidalTest, IdenticalStringsZero) {
  EXPECT_DOUBLE_EQ(MarzalVidalDistance("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(MarzalVidalDistance("", ""), 0.0);
}

TEST(MarzalVidalTest, EmptyVersusNonEmptyIsOne) {
  // The only paths are |y| insertions: weight |y| over length |y| => 1.
  EXPECT_DOUBLE_EQ(MarzalVidalDistance("", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(MarzalVidalDistance("abc", ""), 1.0);
}

TEST(MarzalVidalTest, SingleSubstitutionHalfATwoPath) {
  // x = a, y = b. Path 1: one substitution, ratio 1/1 = 1. Path 2: insert b
  // then delete a: ratio 2/2 = 1. Best is 1... but a longer path cannot
  // beat 1 because at least one op has weight 1 per length unit... check
  // the DP returns exactly 1.
  EXPECT_DOUBLE_EQ(MarzalVidalDistance("a", "b"), 1.0);
}

TEST(MarzalVidalTest, RatioCanBeatNaiveNormalisations) {
  // x = aaab, y = aaa: the deletion path has weight 1, length 4 (3 matches +
  // 1 deletion): ratio 1/4, strictly below dE/|x| = 1/4? equal. For
  // ab -> aba: path match,match,insert: 1/3.
  EXPECT_DOUBLE_EQ(MarzalVidalDistance("aaab", "aaa"), 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(MarzalVidalDistance("ab", "aba"), 1.0 / 3.0);
}

TEST(MarzalVidalTest, AtMostDmax) {
  // The alignment of length max(|x|,|y|) realising dE gives a ratio
  // <= dE / max(|x|,|y|)... the minimal path may use more ops; in all cases
  // dMV <= dmax must hold because that alignment is itself a valid path of
  // length >= max(|x|,|y|)... we check empirically on random strings.
  Rng rng(3);
  Alphabet ab("abc");
  for (int i = 0; i < 200; ++i) {
    std::string x = StringGen::UniformLength(rng, ab, 1, 10);
    std::string y = StringGen::UniformLength(rng, ab, 1, 10);
    EXPECT_LE(MarzalVidalDistance(x, y), DmaxDistance(x, y) + 1e-12);
  }
}

TEST(MarzalVidalTest, RangeZeroOne) {
  Rng rng(4);
  Alphabet ab("ab");
  for (int i = 0; i < 300; ++i) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 12);
    std::string y = StringGen::UniformLength(rng, ab, 0, 12);
    double d = MarzalVidalDistance(x, y);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0 + 1e-12);
  }
}

TEST(MarzalVidalTest, SymmetryAndIdentity) {
  Rng rng(5);
  Alphabet ab("abc");
  for (int i = 0; i < 150; ++i) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 10);
    std::string y = StringGen::UniformLength(rng, ab, 0, 10);
    EXPECT_NEAR(MarzalVidalDistance(x, y), MarzalVidalDistance(y, x), 1e-12);
    EXPECT_DOUBLE_EQ(MarzalVidalDistance(x, x), 0.0);
    if (x != y) EXPECT_GT(MarzalVidalDistance(x, y), 0.0);
  }
}

TEST(MarzalVidalTest, ZeroOnlyForEqualStrings) {
  EXPECT_GT(MarzalVidalDistance("a", ""), 0.0);
  EXPECT_GT(MarzalVidalDistance("ab", "ba"), 0.0);
}

TEST(MarzalVidalTest, BruteForceCrossCheckTinyStrings) {
  // Brute-force: enumerate all alignments via the weight-by-length DP is
  // what we're testing, so instead check against an independent recursive
  // enumeration of alignment (weight, length) pairs.
  struct Enumerator {
    std::string_view x, y;
    double best = 1e9;
    void Rec(std::size_t i, std::size_t j, std::size_t w, std::size_t len) {
      if (i == x.size() && j == y.size()) {
        if (len > 0) best = std::min(best, static_cast<double>(w) / len);
        return;
      }
      if (i < x.size() && j < y.size()) {
        Rec(i + 1, j + 1, w + (x[i] == y[j] ? 0 : 1), len + 1);
      }
      if (i < x.size()) Rec(i + 1, j, w + 1, len + 1);
      if (j < y.size()) Rec(i, j + 1, w + 1, len + 1);
    }
  };
  Rng rng(6);
  Alphabet ab("ab");
  for (int t = 0; t < 60; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 1, 6);
    std::string y = StringGen::UniformLength(rng, ab, 1, 6);
    Enumerator e{x, y};
    e.Rec(0, 0, 0, 0);
    EXPECT_NEAR(MarzalVidalDistance(x, y), e.best, 1e-12)
        << "x=" << x << " y=" << y;
  }
}

TEST(MarzalVidalTest, GeneralizedCostsSupported) {
  MatrixCosts costs = MatrixCosts::Uniform(Alphabet("ab"), 2.0, 1.0, 1.0);
  // a -> b: substitution path ratio 2/1 = 2; ins+del path ratio 2/2 = 1.
  EXPECT_DOUBLE_EQ(MarzalVidalDistance("a", "b", costs), 1.0);
}

TEST(MarzalVidalTest, AdapterMetadata) {
  MarzalVidalNormalizedDistance d;
  EXPECT_EQ(d.name(), "dMV");
  EXPECT_FALSE(d.is_metric());
  EXPECT_DOUBLE_EQ(d.Distance("ab", "aba"), 1.0 / 3.0);
}

}  // namespace
}  // namespace cned
