#include "search/counting_distance.h"

#include <gtest/gtest.h>

#include "distances/levenshtein.h"
#include "distances/registry.h"

namespace cned {
namespace {

TEST(CountingDistanceTest, CountsEvaluations) {
  CountingDistance c(std::make_shared<EditDistance>());
  EXPECT_EQ(c.count(), 0u);
  c.Distance("a", "b");
  c.Distance("ab", "ba");
  EXPECT_EQ(c.count(), 2u);
}

TEST(CountingDistanceTest, ResetClears) {
  CountingDistance c(std::make_shared<EditDistance>());
  c.Distance("a", "b");
  c.Reset();
  EXPECT_EQ(c.count(), 0u);
}

TEST(CountingDistanceTest, DelegatesValueAndMetadata) {
  CountingDistance c(MakeDistance("dE"));
  EXPECT_DOUBLE_EQ(c.Distance("kitten", "sitting"), 3.0);
  EXPECT_EQ(c.name(), "dE");
  EXPECT_TRUE(c.is_metric());
}

TEST(CountingDistanceTest, NonMetricFlagPropagates) {
  CountingDistance c(MakeDistance("dmax"));
  EXPECT_FALSE(c.is_metric());
}

}  // namespace
}  // namespace cned
