#include "strings/string_gen.h"

#include <gtest/gtest.h>

namespace cned {
namespace {

TEST(StringGenTest, UniformHasExactLengthAndAlphabet) {
  Rng rng(1);
  Alphabet dna = Alphabet::Dna();
  for (std::size_t len : {0u, 1u, 5u, 50u}) {
    std::string s = StringGen::Uniform(rng, dna, len);
    EXPECT_EQ(s.size(), len);
    EXPECT_TRUE(dna.ContainsAll(s));
  }
}

TEST(StringGenTest, UniformLengthWithinBounds) {
  Rng rng(2);
  Alphabet latin = Alphabet::Latin();
  for (int i = 0; i < 200; ++i) {
    std::string s = StringGen::UniformLength(rng, latin, 3, 9);
    EXPECT_GE(s.size(), 3u);
    EXPECT_LE(s.size(), 9u);
  }
}

TEST(StringGenTest, BatchCountAndDeterminism) {
  Alphabet dna = Alphabet::Dna();
  Rng a(3), b(3);
  auto va = StringGen::Batch(a, dna, 20, 1, 10);
  auto vb = StringGen::Batch(b, dna, 20, 1, 10);
  EXPECT_EQ(va.size(), 20u);
  EXPECT_EQ(va, vb);
}

TEST(StringGenTest, EnumerateCountsGeometric) {
  Alphabet ab("ab");
  // 1 + 2 + 4 + 8 = 15 strings of length <= 3 over a binary alphabet.
  auto all = StringGen::Enumerate(ab, 3);
  EXPECT_EQ(all.size(), 15u);
  EXPECT_EQ(all.front(), "");
  // No duplicates.
  std::set<std::string> uniq(all.begin(), all.end());
  EXPECT_EQ(uniq.size(), all.size());
}

TEST(StringGenTest, EnumerateLengthZero) {
  auto all = StringGen::Enumerate(Alphabet("ab"), 0);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].empty());
}

}  // namespace
}  // namespace cned
