#include "core/generalized_contextual.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/contextual.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(GeneralizedContextualTest, UnitCostsReduceToContextual) {
  UnitCosts unit;
  Alphabet ab("ab");
  Rng rng(61);
  for (int t = 0; t < 15; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 4);
    std::string y = StringGen::UniformLength(rng, ab, 0, 4);
    EXPECT_NEAR(NaiveGeneralizedContextualDistance(x, y, unit, ab),
                ContextualDistance(x, y), 1e-9)
        << "x=" << x << " y=" << y;
  }
}

TEST(GeneralizedContextualTest, DummySymbolExploitLowersCost) {
  // The paper's §5 remark: with non-uniform costs the optimal path may
  // insert cheap dummy symbols to lengthen the string, perform the
  // expensive substitutions at a discount, then erase the dummies. We build
  // such a cost model: substitutions cost 10, inserting/deleting 'z' is
  // nearly free, and compare the distance when 'z' is available against the
  // internal-symbols-only distance.
  Alphabet internal("ab");
  Alphabet extended("abz");
  const std::size_t n = 3;
  std::vector<std::vector<double>> sub(n, std::vector<double>(n, 10.0));
  for (std::size_t i = 0; i < n; ++i) sub[i][i] = 0.0;
  std::vector<double> ins{1.0, 1.0, 0.01};  // cheap 'z' insertions
  std::vector<double> del{1.0, 1.0, 0.01};  // cheap 'z' deletions
  MatrixCosts costs(extended, sub, ins, del);

  // x = "aa" -> y = "bb": two expensive substitutions.
  double without_dummy = NaiveGeneralizedContextualDistance(
      "aa", "bb", costs, internal, /*max_len=*/4);
  double with_dummy = NaiveGeneralizedContextualDistance(
      "aa", "bb", costs, extended, /*max_len=*/8);
  EXPECT_LT(with_dummy, without_dummy);
  // Internal-only: 2 substitutions on a length-2 string = 10/2 + 10/2 = 10
  // (indel alternatives cost 1/2+1/3+... per symbol but substitution of both
  // symbols via delete+insert of a,b costs (1+1)/len each — cheaper; the
  // Dijkstra finds whatever is minimal, so we only pin the ordering).
  EXPECT_GT(without_dummy, 0.0);
}

TEST(GeneralizedContextualTest, InternalOperationsPropertyFailsForWeights) {
  // Counterpart of Proposition 1 breaking: an alphabet symbol that appears
  // in neither x nor y strictly improves the optimum — impossible for unit
  // costs (see ContextualReferenceTest.ExtraAlphabetSymbolNeverHelps).
  Alphabet internal("ab");
  Alphabet extended("abz");
  std::vector<std::vector<double>> sub(3, std::vector<double>(3, 6.0));
  for (std::size_t i = 0; i < 3; ++i) sub[i][i] = 0.0;
  MatrixCosts costs(extended, sub, {1.0, 1.0, 0.02}, {1.0, 1.0, 0.02});

  double internal_only = NaiveGeneralizedContextualDistance(
      "aaa", "bbb", costs, internal, /*max_len=*/6);
  double with_dummy = NaiveGeneralizedContextualDistance(
      "aaa", "bbb", costs, extended, /*max_len=*/12);
  EXPECT_LT(with_dummy, internal_only);
}

TEST(GeneralizedContextualTest, ValidatesInputs) {
  UnitCosts unit;
  Alphabet ab("ab");
  EXPECT_THROW(NaiveGeneralizedContextualDistance("ax", "b", unit, ab),
               std::invalid_argument);
  EXPECT_THROW(
      NaiveGeneralizedContextualDistance("aaaa", "b", unit, ab, /*max_len=*/2),
      std::invalid_argument);
}

TEST(GeneralizedContextualTest, IdentityZero) {
  UnitCosts unit;
  Alphabet ab("ab");
  EXPECT_DOUBLE_EQ(NaiveGeneralizedContextualDistance("abab", "abab", unit, ab),
                   0.0);
}

}  // namespace
}  // namespace cned
