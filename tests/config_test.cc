#include "common/config.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace cned {
namespace {

class ConfigTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("CNED_SCALE");
    unsetenv("CNED_SEED");
    unsetenv("CNED_SAMPLES");
  }
};

TEST_F(ConfigTest, DefaultsWithoutEnv) {
  unsetenv("CNED_SCALE");
  unsetenv("CNED_SEED");
  EXPECT_DOUBLE_EQ(Config::Scale(), 1.0);
  EXPECT_EQ(Config::Seed(), 20080401u);
  EXPECT_EQ(Config::Int("SAMPLES", 123), 123);
  EXPECT_EQ(Config::ScaledInt("SAMPLES", 1000), 1000);
}

TEST_F(ConfigTest, ScaleMultipliesDefaults) {
  setenv("CNED_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(Config::Scale(), 0.5);
  EXPECT_EQ(Config::ScaledInt("SAMPLES", 1000), 500);
}

TEST_F(ConfigTest, ScaledIntNeverBelowOne) {
  setenv("CNED_SCALE", "0.0001", 1);
  EXPECT_EQ(Config::ScaledInt("SAMPLES", 100), 1);
}

TEST_F(ConfigTest, ExplicitOverrideBeatsScale) {
  setenv("CNED_SCALE", "0.5", 1);
  setenv("CNED_SAMPLES", "77", 1);
  EXPECT_EQ(Config::ScaledInt("SAMPLES", 1000), 77);
  EXPECT_EQ(Config::Int("SAMPLES", 5), 77);
}

TEST_F(ConfigTest, SeedOverride) {
  setenv("CNED_SEED", "99", 1);
  EXPECT_EQ(Config::Seed(), 99u);
}

TEST_F(ConfigTest, NonPositiveScaleIgnored) {
  setenv("CNED_SCALE", "-3", 1);
  EXPECT_DOUBLE_EQ(Config::Scale(), 1.0);
}

}  // namespace
}  // namespace cned
