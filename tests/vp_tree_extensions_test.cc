// Tests for the VP-tree k-NN and range-search extensions.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "search/exhaustive.h"
#include "search/vp_tree.h"

namespace cned {
namespace {

std::vector<std::string> Dict(std::size_t n, std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = n;
  opt.seed = seed;
  return GenerateDictionary(opt).strings;
}

TEST(VpTreeKNearestTest, MatchesExhaustiveKNN) {
  auto protos = Dict(220, 1501);
  Rng rng(1502);
  auto queries = MakeQueries(protos, 30, 2, Alphabet::Latin(), rng);
  auto dist = MakeDistance("dE");
  VpTree tree(protos, dist);
  ExhaustiveSearch exact(protos, dist);
  for (const auto& q : queries) {
    for (std::size_t k : {1u, 4u, 9u}) {
      auto a = tree.KNearest(q, k);
      auto b = exact.KNearest(q, k);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i].distance, b[i].distance, 1e-9)
            << "q=" << q << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST(VpTreeKNearestTest, SortedAscendingAndClamped) {
  auto protos = Dict(40, 1503);
  VpTree tree(protos, MakeDistance("dYB"));
  auto r = tree.KNearest("palabras", 6);
  ASSERT_EQ(r.size(), 6u);
  for (std::size_t i = 1; i < r.size(); ++i) {
    EXPECT_LE(r[i - 1].distance, r[i].distance);
  }
  EXPECT_EQ(tree.KNearest("x", 100).size(), protos.size());
}

TEST(VpTreeKNearestTest, OneNnConsistentWithNearest) {
  auto protos = Dict(120, 1504);
  Rng rng(1505);
  auto queries = MakeQueries(protos, 25, 2, Alphabet::Latin(), rng);
  VpTree tree(protos, MakeDistance("dE"));
  for (const auto& q : queries) {
    auto knn = tree.KNearest(q, 1);
    ASSERT_EQ(knn.size(), 1u);
    EXPECT_DOUBLE_EQ(knn[0].distance, tree.Nearest(q).distance);
  }
}

TEST(VpTreeRangeSearchTest, MatchesBruteForce) {
  auto protos = Dict(180, 1506);
  Rng rng(1507);
  auto queries = MakeQueries(protos, 25, 2, Alphabet::Latin(), rng);
  auto dist = MakeDistance("dE");
  VpTree tree(protos, dist);
  for (const auto& q : queries) {
    for (double radius : {0.0, 1.0, 3.0}) {
      auto hits = tree.RangeSearch(q, radius);
      std::size_t expected = 0;
      for (const auto& p : protos) {
        if (dist->Distance(q, p) <= radius) ++expected;
      }
      EXPECT_EQ(hits.size(), expected) << "q=" << q << " r=" << radius;
      for (std::size_t i = 1; i < hits.size(); ++i) {
        EXPECT_LE(hits[i - 1].distance, hits[i].distance);
      }
    }
  }
}

TEST(VpTreeRangeSearchTest, PrunesComputations) {
  auto protos = Dict(600, 1508);
  Rng rng(1509);
  auto queries = MakeQueries(protos, 30, 1, Alphabet::Latin(), rng);
  VpTree tree(protos, MakeDistance("dE"));
  VpTree::QueryStats stats;
  for (const auto& q : queries) tree.RangeSearch(q, 1.0, &stats);
  EXPECT_LT(stats.distance_computations,
            static_cast<std::uint64_t>(protos.size()) * queries.size());
}

TEST(VpTreeRangeSearchTest, SelfQueryAtRadiusZero) {
  auto protos = Dict(60, 1510);
  VpTree tree(protos, MakeDistance("dE"));
  auto hits = tree.RangeSearch(protos[7], 0.0);
  ASSERT_GE(hits.size(), 1u);
  EXPECT_DOUBLE_EQ(hits[0].distance, 0.0);
  EXPECT_EQ(protos[hits[0].index], protos[7]);
}

}  // namespace
}  // namespace cned
