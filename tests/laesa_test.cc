#include "search/laesa.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "search/counting_distance.h"
#include "search/exhaustive.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

std::vector<std::string> SmallDictionary(std::size_t n, std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = n;
  opt.seed = seed;
  return GenerateDictionary(opt).strings;
}

TEST(LaesaTest, ExactForMetricDistances) {
  // With a true metric, LAESA must return exactly the exhaustive nearest
  // neighbour (same distance; ties may differ in index).
  auto protos = SmallDictionary(200, 101);
  Rng rng(102);
  Alphabet latin = Alphabet::Latin();
  auto queries = MakeQueries(protos, 60, 2, latin, rng);

  for (const char* name : {"dE", "dYB"}) {
    auto dist = MakeDistance(name);
    Laesa laesa(protos, dist, /*num_pivots=*/12);
    ExhaustiveSearch exact(protos, dist);
    for (const auto& q : queries) {
      auto a = laesa.Nearest(q);
      auto b = exact.Nearest(q);
      EXPECT_NEAR(a.distance, b.distance, 1e-9)
          << "distance=" << name << " query=" << q;
    }
  }
}

TEST(LaesaTest, ExactForContextualMetric) {
  auto protos = SmallDictionary(80, 103);
  Rng rng(104);
  auto queries = MakeQueries(protos, 20, 2, Alphabet::Latin(), rng);
  auto dist = MakeDistance("dC");
  Laesa laesa(protos, dist, 8);
  ExhaustiveSearch exact(protos, dist);
  for (const auto& q : queries) {
    EXPECT_NEAR(laesa.Nearest(q).distance, exact.Nearest(q).distance, 1e-9);
  }
}

TEST(LaesaTest, FewerComputationsThanExhaustive) {
  auto protos = SmallDictionary(400, 105);
  Rng rng(106);
  auto queries = MakeQueries(protos, 40, 2, Alphabet::Latin(), rng);
  Laesa laesa(protos, MakeDistance("dE"), 30);
  Laesa::QueryStats stats;
  for (const auto& q : queries) laesa.Nearest(q, &stats);
  double avg = static_cast<double>(stats.distance_computations) /
               static_cast<double>(queries.size());
  EXPECT_LT(avg, static_cast<double>(protos.size()) * 0.7)
      << "LAESA saved too little over exhaustive search";
  EXPECT_GE(avg, 1.0);
}

TEST(LaesaTest, ComputationsNeverExceedPrototypeCount) {
  auto protos = SmallDictionary(100, 107);
  Laesa laesa(protos, MakeDistance("dE"), 10);
  Laesa::QueryStats stats;
  laesa.Nearest("zzz", &stats);
  EXPECT_LE(stats.distance_computations, protos.size());
}

TEST(LaesaTest, WorksWithSinglePivotAndSinglePrototype) {
  std::vector<std::string> one{"hello"};
  Laesa laesa(one, MakeDistance("dE"), 1);
  auto r = laesa.Nearest("help");
  EXPECT_EQ(r.index, 0u);
  EXPECT_DOUBLE_EQ(r.distance, 2.0);
}

TEST(LaesaTest, ExplicitPivotIndicesRespected) {
  std::vector<std::string> protos{"aa", "bb", "cc", "dd"};
  Laesa laesa(protos, MakeDistance("dE"), std::vector<std::size_t>{2, 3});
  EXPECT_EQ(laesa.num_pivots(), 2u);
  EXPECT_EQ(laesa.pivots()[0], 2u);
  auto r = laesa.Nearest("ab");
  ExhaustiveSearch exact(protos, MakeDistance("dE"));
  EXPECT_NEAR(r.distance, exact.Nearest("ab").distance, 1e-12);
}

TEST(LaesaTest, MorePivotsFewerQueryComputations) {
  auto protos = SmallDictionary(500, 108);
  Rng rng(109);
  auto queries = MakeQueries(protos, 50, 2, Alphabet::Latin(), rng);
  std::uint64_t with_few, with_many;
  {
    Laesa laesa(protos, MakeDistance("dE"), 4);
    Laesa::QueryStats st;
    for (const auto& q : queries) laesa.Nearest(q, &st);
    with_few = st.distance_computations;
  }
  {
    Laesa laesa(protos, MakeDistance("dE"), 60);
    Laesa::QueryStats st;
    for (const auto& q : queries) laesa.Nearest(q, &st);
    with_many = st.distance_computations;
  }
  EXPECT_LT(with_many, with_few);
}

TEST(LaesaTest, PreprocessingCostAccounted) {
  auto protos = SmallDictionary(50, 110);
  Laesa laesa(protos, MakeDistance("dE"), 5);
  // Pivot selection (~5*50) + table (5*50).
  EXPECT_GE(laesa.preprocessing_computations(), 250u);
}

TEST(LaesaTest, InvalidConstructionThrows) {
  std::vector<std::string> protos{"a"};
  std::vector<std::string> empty;
  EXPECT_THROW(Laesa(empty, MakeDistance("dE"), 1), std::invalid_argument);
  EXPECT_THROW(Laesa(protos, MakeDistance("dE"), std::vector<std::size_t>{}),
               std::invalid_argument);
  EXPECT_THROW(Laesa(protos, MakeDistance("dE"), std::vector<std::size_t>{7}),
               std::invalid_argument);
}

TEST(LaesaTest, NonMetricHeuristicStillFindsGoodNeighbours) {
  // With dC,h (not guaranteed metric) LAESA may in principle miss the true
  // nearest neighbour; the paper uses it anyway. Verify that on a real-ish
  // workload the result matches exhaustive search almost always.
  auto protos = SmallDictionary(150, 111);
  Rng rng(112);
  auto queries = MakeQueries(protos, 40, 2, Alphabet::Latin(), rng);
  auto dist = MakeDistance("dC,h");
  Laesa laesa(protos, dist, 15);
  ExhaustiveSearch exact(protos, dist);
  int agree = 0;
  for (const auto& q : queries) {
    if (std::abs(laesa.Nearest(q).distance - exact.Nearest(q).distance) < 1e-9) {
      ++agree;
    }
  }
  EXPECT_GE(agree, 38);  // allow a rare miss
}

TEST(LaesaTest, DuplicatePivotIndicesAreHandled) {
  // The ablation constructor (and Load) accept duplicate pivot indices;
  // the sweep must count the *distinct* pivot candidates or its
  // pivots-first selection walks off the packed arrays.
  std::vector<std::string> protos{"aa", "ab", "zz", "zy", "mn"};
  auto dist = MakeDistance("dE");
  Laesa laesa(protos, dist, std::vector<std::size_t>{0, 0, 2});
  ExhaustiveSearch exact(protos, dist);
  for (const char* q : {"aa", "zz", "mn", "qq", "az"}) {
    EXPECT_DOUBLE_EQ(laesa.Nearest(q).distance, exact.Nearest(q).distance)
        << q;
  }
}

}  // namespace
}  // namespace cned
