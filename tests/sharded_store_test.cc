// ShardedPrototypeStore: deterministic contiguous partitioning that keeps
// the global index space of the flat store intact, per-shard label slices,
// and the global view/length accessors the sharded searcher builds on.

#include "datasets/sharded_prototype_store.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datasets/dictionary_gen.h"

namespace cned {
namespace {

std::vector<std::string> Words(std::size_t n, std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = n;
  opt.seed = seed;
  return GenerateDictionary(opt).strings;
}

TEST(ShardedStoreTest, PartitionCoversGlobalOrderExactly) {
  const auto words = Words(103, 9001);
  for (std::size_t shards : {1u, 2u, 4u, 7u, 8u}) {
    ShardedPrototypeStore store(words, shards);
    ASSERT_EQ(store.shard_count(), shards);
    ASSERT_EQ(store.size(), words.size());
    std::size_t total = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(store.shard_base(s), total) << s;
      total += store.shard(s).size();
    }
    EXPECT_EQ(total, words.size());
    for (std::size_t i = 0; i < words.size(); ++i) {
      EXPECT_EQ(store.view(i), words[i]) << "shards=" << shards << " i=" << i;
      EXPECT_EQ(store.length(i), words[i].size());
      const std::size_t s = store.ShardOf(i);
      ASSERT_LT(s, shards);
      EXPECT_GE(i, store.shard_base(s));
      EXPECT_LT(i, store.shard_base(s) + store.shard(s).size());
    }
  }
}

TEST(ShardedStoreTest, BalancedPartition) {
  ShardedPrototypeStore store(Words(100, 9002), 8);
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_GE(store.shard(s).size(), 12u);
    EXPECT_LE(store.shard(s).size(), 13u);
  }
}

TEST(ShardedStoreTest, MoreShardsThanStringsLeavesEmptyShards) {
  const std::vector<std::string> words{"aa", "bb", "cc"};
  ShardedPrototypeStore store(words, 5);
  EXPECT_EQ(store.size(), 3u);
  std::size_t non_empty = 0;
  for (std::size_t s = 0; s < 5; ++s) {
    non_empty += store.shard(s).empty() ? 0 : 1;
  }
  EXPECT_EQ(non_empty, 3u);
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(store.view(i), words[i]);
  }
}

TEST(ShardedStoreTest, LabelsSliceFollowsShards) {
  const auto words = Words(50, 9003);
  std::vector<int> labels(words.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 7);
  }
  ShardedPrototypeStore store(words, 4, labels);
  ASSERT_TRUE(store.has_labels());
  EXPECT_EQ(store.labels(), labels);
  for (std::size_t s = 0; s < 4; ++s) {
    const int* slice = store.shard_labels(s);
    ASSERT_NE(slice, nullptr);
    for (std::size_t j = 0; j < store.shard(s).size(); ++j) {
      EXPECT_EQ(slice[j], labels[store.shard_base(s) + j]);
    }
  }
}

TEST(ShardedStoreTest, ToFlatStoreRoundTrips) {
  const auto words = Words(37, 9004);
  ShardedPrototypeStore store(words, 3);
  PrototypeStore flat = store.ToFlatStore();
  ASSERT_EQ(flat.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(flat.view(i), words[i]);
  }
}

TEST(ShardedStoreTest, FromFlatStoreMatchesFromStrings) {
  const auto words = Words(41, 9005);
  PrototypeStore flat(words);
  ShardedPrototypeStore a(words, 4);
  ShardedPrototypeStore b(flat, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.view(i), b.view(i));
  }
}

TEST(ShardedStoreTest, RejectsBadArguments) {
  const auto words = Words(10, 9006);
  EXPECT_THROW(ShardedPrototypeStore(words, 0), std::invalid_argument);
  EXPECT_THROW(ShardedPrototypeStore(words, 2, std::vector<int>{1, 2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cned
