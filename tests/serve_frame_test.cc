// Wire-level contracts of the serving tier: checksummed framing round
// trips, corruption and truncation surface as kMalformed (never a hang or
// a garbage decode), receives are deadline-bounded, the payload codec is
// strict about short reads and trailing bytes, and the CNED_FAULT grammar
// parses deterministically.

#include "serve/frame.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/fault.h"

namespace cned {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() { EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) close(fds[0]);
    if (fds[1] >= 0) close(fds[1]);
  }
  int fds[2] = {-1, -1};
};

TEST(ServeFrameTest, RoundTripsPayloadTypeSequenceAndQueryId) {
  SocketPair sp;
  PayloadWriter w;
  w.U32(7);
  w.U64(123456789012345ull);
  w.I32(-42);
  w.F64(2.5);
  w.Str("hello frame");
  ASSERT_TRUE(SendFrame(sp.fds[0], FrameType::kStep, 99, 1234, w.buf.data(),
                        w.buf.size()));
  Frame f;
  ASSERT_EQ(RecvFrame(sp.fds[1], &f, 1000), RecvStatus::kOk);
  EXPECT_EQ(f.type, static_cast<std::uint32_t>(FrameType::kStep));
  EXPECT_EQ(f.seq, 99u);
  EXPECT_EQ(f.qid, 1234u);
  PayloadReader r(f.payload);
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.U64(), 123456789012345ull);
  EXPECT_EQ(r.I32(), -42);
  EXPECT_EQ(r.F64(), 2.5);
  EXPECT_EQ(r.Str(), "hello frame");
  EXPECT_TRUE(r.Done());
}

TEST(ServeFrameTest, EmptyPayloadRoundTrips) {
  SocketPair sp;
  ASSERT_TRUE(SendFrame(sp.fds[0], FrameType::kPing, 1, 0, nullptr, 0));
  Frame f;
  ASSERT_EQ(RecvFrame(sp.fds[1], &f, 1000), RecvStatus::kOk);
  EXPECT_EQ(f.type, static_cast<std::uint32_t>(FrameType::kPing));
  EXPECT_EQ(f.qid, 0u);
  EXPECT_TRUE(f.payload.empty());
}

TEST(ServeFrameTest, CorruptCrcIsMalformed) {
  SocketPair sp;
  const char payload[] = "payload bytes";
  ASSERT_TRUE(SendFrame(sp.fds[0], FrameType::kReply, 5, 0, payload,
                        sizeof(payload), /*corrupt_crc=*/true));
  Frame f;
  EXPECT_EQ(RecvFrame(sp.fds[1], &f, 1000), RecvStatus::kMalformed);
}

TEST(ServeFrameTest, OversizedLengthAndUnknownTypeAreMalformed) {
  {
    // Header whose length field claims > kMaxFramePayload.
    SocketPair sp;
    std::uint32_t header[5] = {kMaxFramePayload + 1,
                               static_cast<std::uint32_t>(FrameType::kReply),
                               1, 0, 0};
    ASSERT_EQ(send(sp.fds[0], header, sizeof(header), 0),
              static_cast<ssize_t>(sizeof(header)));
    Frame f;
    EXPECT_EQ(RecvFrame(sp.fds[1], &f, 1000), RecvStatus::kMalformed);
  }
  {
    // Type outside the known range.
    SocketPair sp;
    std::uint32_t header[5] = {0, kMaxFrameType + 1, 1, 0, 0};
    ASSERT_EQ(send(sp.fds[0], header, sizeof(header), 0),
              static_cast<ssize_t>(sizeof(header)));
    Frame f;
    EXPECT_EQ(RecvFrame(sp.fds[1], &f, 1000), RecvStatus::kMalformed);
  }
}

TEST(ServeFrameTest, RecvTimesOutInsteadOfHanging) {
  SocketPair sp;
  Frame f;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(RecvFrame(sp.fds[1], &f, 50), RecvStatus::kTimeout);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_GE(elapsed, 45);
  EXPECT_LT(elapsed, 5000);
}

TEST(ServeFrameTest, TruncatedFrameThenCloseIsNotOk) {
  SocketPair sp;
  // Half a header, then EOF: the receive must fail (closed), not decode.
  std::uint32_t half[2] = {16, static_cast<std::uint32_t>(FrameType::kReply)};
  ASSERT_EQ(send(sp.fds[0], half, sizeof(half), 0),
            static_cast<ssize_t>(sizeof(half)));
  close(sp.fds[0]);
  sp.fds[0] = -1;
  Frame f;
  EXPECT_EQ(RecvFrame(sp.fds[1], &f, 1000), RecvStatus::kClosed);
}

// Regression: the remaining-time-to-ms conversion used to truncate, so a
// sub-millisecond budget became poll(0)=timeout even with a complete frame
// already sitting in the socket buffer. A zero/near-zero timeout must still
// drain buffered data — it means "take what's there", not "fail fast".
TEST(ServeFrameTest, ZeroTimeoutStillDrainsBufferedFrame) {
  SocketPair sp;
  const char payload[] = "already buffered";
  ASSERT_TRUE(
      SendFrame(sp.fds[0], FrameType::kReply, 7, 3, payload, sizeof(payload)));
  Frame f;
  ASSERT_EQ(RecvFrame(sp.fds[1], &f, 0), RecvStatus::kOk);
  EXPECT_EQ(f.seq, 7u);
  EXPECT_EQ(f.qid, 3u);

  // And with nothing buffered, a zero timeout fails fast, not a hang.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(RecvFrame(sp.fds[1], &f, 0), RecvStatus::kTimeout);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(elapsed, 1000);
}

TEST(ServeFrameBufferTest, PopsMultipleFramesFromOneAppend) {
  std::vector<char> bytes;
  PayloadWriter w1;
  w1.U64(11);
  PayloadWriter w2;
  w2.Str("second");
  ASSERT_TRUE(EncodeFrame(&bytes, FrameType::kReply, 1, 100, w1.buf.data(),
                          w1.buf.size()));
  ASSERT_TRUE(EncodeFrame(&bytes, FrameType::kError, 2, 200, w2.buf.data(),
                          w2.buf.size()));
  ASSERT_TRUE(EncodeFrame(&bytes, FrameType::kEndSweep, 3, 300, nullptr, 0));

  FrameBuffer fb;
  fb.Append(bytes.data(), bytes.size());
  Frame f;
  ASSERT_EQ(fb.Pop(&f), FrameBuffer::Next::kFrame);
  EXPECT_EQ(f.type, static_cast<std::uint32_t>(FrameType::kReply));
  EXPECT_EQ(f.seq, 1u);
  EXPECT_EQ(f.qid, 100u);
  PayloadReader r1(f.payload);
  EXPECT_EQ(r1.U64(), 11u);
  ASSERT_EQ(fb.Pop(&f), FrameBuffer::Next::kFrame);
  EXPECT_EQ(f.qid, 200u);
  PayloadReader r2(f.payload);
  EXPECT_EQ(r2.Str(), "second");
  ASSERT_EQ(fb.Pop(&f), FrameBuffer::Next::kFrame);
  EXPECT_EQ(f.type, static_cast<std::uint32_t>(FrameType::kEndSweep));
  EXPECT_TRUE(f.payload.empty());
  EXPECT_EQ(fb.Pop(&f), FrameBuffer::Next::kNeedMore);
  EXPECT_EQ(fb.buffered_bytes(), 0u);
}

TEST(ServeFrameBufferTest, PartialFrameWaitsAcrossAppends) {
  std::vector<char> bytes;
  PayloadWriter w;
  w.Str("split across reads");
  ASSERT_TRUE(
      EncodeFrame(&bytes, FrameType::kStep, 9, 42, w.buf.data(), w.buf.size()));

  FrameBuffer fb;
  Frame f;
  // Feed one byte at a time: never a false frame, never a lost byte.
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    fb.Append(&bytes[i], 1);
    ASSERT_EQ(fb.Pop(&f), FrameBuffer::Next::kNeedMore) << "at byte " << i;
  }
  fb.Append(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(fb.Pop(&f), FrameBuffer::Next::kFrame);
  EXPECT_EQ(f.seq, 9u);
  EXPECT_EQ(f.qid, 42u);
  PayloadReader r(f.payload);
  EXPECT_EQ(r.Str(), "split across reads");
}

TEST(ServeFrameBufferTest, MalformedPoisonsTheStream) {
  FrameBuffer fb;
  std::uint32_t header[5] = {0, kMaxFrameType + 1, 1, 0, 0};
  fb.Append(header, sizeof(header));
  Frame f;
  EXPECT_EQ(fb.Pop(&f), FrameBuffer::Next::kMalformed);
  // A valid frame appended afterwards must NOT resynchronise the stream.
  std::vector<char> good;
  ASSERT_TRUE(EncodeFrame(&good, FrameType::kPing, 1, 0, nullptr, 0));
  fb.Append(good.data(), good.size());
  EXPECT_EQ(fb.Pop(&f), FrameBuffer::Next::kMalformed);
}

TEST(ServeFrameBufferTest, CrcMismatchIsMalformed) {
  std::vector<char> bytes;
  const char payload[] = "mangle me";
  ASSERT_TRUE(EncodeFrame(&bytes, FrameType::kReply, 1, 1, payload,
                          sizeof(payload), /*corrupt_crc=*/true));
  FrameBuffer fb;
  fb.Append(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(fb.Pop(&f), FrameBuffer::Next::kMalformed);
}

TEST(ServeFrameTest, ClosedPeerIsDetected) {
  SocketPair sp;
  close(sp.fds[0]);
  sp.fds[0] = -1;
  Frame f;
  EXPECT_EQ(RecvFrame(sp.fds[1], &f, 1000), RecvStatus::kClosed);
}

TEST(ServeFrameTest, PayloadReaderRejectsShortAndTrailingBytes) {
  PayloadWriter w;
  w.U32(1);
  w.F64(3.5);
  {
    // Short read: asking for more than is there fails sticky.
    PayloadReader r(w.buf.data(), w.buf.size());
    r.U32();
    r.F64();
    EXPECT_TRUE(r.Done());
    EXPECT_EQ(r.U64(), 0u);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.Done());
  }
  {
    // Trailing garbage is as malformed as a short read.
    PayloadReader r(w.buf.data(), w.buf.size());
    r.U32();
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r.Done());
  }
  {
    // A string whose length prefix overruns the payload.
    PayloadWriter bad;
    bad.U32(1000);  // claims 1000 bytes, none follow
    PayloadReader r(bad.buf.data(), bad.buf.size());
    EXPECT_EQ(r.Str(), "");
    EXPECT_FALSE(r.ok());
  }
}

TEST(ServeFaultTest, ParsesFullGrammar) {
  const FaultSpec spec = FaultSpec::Parse(
      "crash:shard=1,op=step,nth=3|delay:op=eval,every=2,ms=50|drop:|"
      "corrupt:shard=0");
  ASSERT_EQ(spec.directives.size(), 4u);
  EXPECT_EQ(spec.directives[0].kind, FaultDirective::Kind::kCrash);
  EXPECT_EQ(spec.directives[0].shard, 1);
  EXPECT_EQ(spec.directives[0].op, "step");
  EXPECT_EQ(spec.directives[0].nth, 3u);
  EXPECT_EQ(spec.directives[1].kind, FaultDirective::Kind::kDelay);
  EXPECT_EQ(spec.directives[1].every, 2u);
  EXPECT_EQ(spec.directives[1].ms, 50u);
  EXPECT_EQ(spec.directives[1].shard, -1);
  EXPECT_EQ(spec.directives[2].kind, FaultDirective::Kind::kDrop);
  EXPECT_EQ(spec.directives[3].kind, FaultDirective::Kind::kCorrupt);
  EXPECT_EQ(spec.directives[3].shard, 0);
  EXPECT_TRUE(FaultSpec::Parse("").empty());
}

TEST(ServeFaultTest, RejectsUnknownKindsKeysOpsAndValues) {
  EXPECT_THROW(FaultSpec::Parse("explode:shard=1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("crash:when=now"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("crash:op=query"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("delay:ms=abc"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("crash:shard="), std::invalid_argument);
}

TEST(ServeFaultTest, NthFiresExactlyOnceAndCountsPerDirective) {
  FaultInjector inj(FaultSpec::Parse("crash:op=step,nth=3"), /*shard=*/0);
  EXPECT_FALSE(inj.OnRequest("step").crash);
  EXPECT_FALSE(inj.OnRequest("eval").crash);  // non-matching: no count
  EXPECT_FALSE(inj.OnRequest("step").crash);
  EXPECT_TRUE(inj.OnRequest("step").crash);  // 3rd matching request
  EXPECT_FALSE(inj.OnRequest("step").crash);
}

TEST(ServeFaultTest, EveryFiresPeriodicallyAndShardFilters) {
  FaultInjector hit(FaultSpec::Parse("delay:shard=2,every=2,ms=7"),
                    /*shard=*/2);
  EXPECT_EQ(hit.OnRequest("eval").delay_ms, 0u);
  EXPECT_EQ(hit.OnRequest("eval").delay_ms, 7u);
  EXPECT_EQ(hit.OnRequest("eval").delay_ms, 0u);
  EXPECT_EQ(hit.OnRequest("eval").delay_ms, 7u);

  FaultInjector miss(FaultSpec::Parse("delay:shard=2,every=1,ms=7"),
                     /*shard=*/1);
  EXPECT_EQ(miss.OnRequest("eval").delay_ms, 0u);

  // No nth/every: fires on every match.
  FaultInjector always(FaultSpec::Parse("corrupt:op=eval"), /*shard=*/0);
  EXPECT_TRUE(always.OnRequest("eval").corrupt);
  EXPECT_TRUE(always.OnRequest("eval").corrupt);
  EXPECT_FALSE(always.OnRequest("step").corrupt);
}

TEST(ServeFaultTest, ReplicaSelectorTargetsOneGroupMember) {
  const FaultSpec spec = FaultSpec::Parse("crash:op=step,nth=1,replica=0");
  ASSERT_EQ(spec.directives.size(), 1u);
  EXPECT_EQ(spec.directives[0].replica, 0);

  // Same spec, same shard, different group ordinal: only replica 0 fires.
  FaultInjector primary(spec, /*shard=*/1, /*replica=*/0);
  FaultInjector standby(spec, /*shard=*/1, /*replica=*/1);
  EXPECT_TRUE(primary.OnRequest("step").crash);
  EXPECT_FALSE(standby.OnRequest("step").crash);

  // No replica key: -1, fires on every member (whole-group faults).
  const FaultSpec all = FaultSpec::Parse("crash:op=step,nth=1");
  EXPECT_EQ(all.directives[0].replica, -1);
  FaultInjector m0(all, /*shard=*/0, /*replica=*/0);
  FaultInjector m1(all, /*shard=*/0, /*replica=*/1);
  EXPECT_TRUE(m0.OnRequest("step").crash);
  EXPECT_TRUE(m1.OnRequest("step").crash);

  EXPECT_THROW(FaultSpec::Parse("crash:replica="), std::invalid_argument);
}

TEST(ServeFaultTest, MangleKindFlagsPayloadCorruption) {
  FaultInjector inj(FaultSpec::Parse("mangle:op=step,nth=2,replica=1"),
                    /*shard=*/3, /*replica=*/1);
  const auto first = inj.OnRequest("step");
  EXPECT_FALSE(first.mangle);
  const auto second = inj.OnRequest("step");
  EXPECT_TRUE(second.mangle);
  // Mangle is byte-corruption with a *valid* CRC: distinct from corrupt.
  EXPECT_FALSE(second.corrupt);
  EXPECT_FALSE(second.crash);
}

}  // namespace
}  // namespace cned
