// Tests that the early-terminated exact DP (k/(m+n) lower-bound pruning in
// ContextualDistanceDetailed) is exactly equivalent to the full layer scan
// over the MaxInsertionProfile, and that it actually prunes.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/contextual.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

// Reference: unpruned minimisation over the full profile.
ContextualResult FullScan(std::string_view x, std::string_view y) {
  const std::size_t m = x.size(), n = y.size();
  auto profile = MaxInsertionProfile(x, y);
  HarmonicTable& h = GlobalHarmonic();
  ContextualResult best;
  best.distance = std::numeric_limits<double>::infinity();
  if (m == 0 && n == 0) {
    best.distance = 0.0;
    return best;
  }
  for (std::size_t k = 0; k < profile.size(); ++k) {
    if (profile[k] < 0) continue;
    const auto ni = static_cast<std::size_t>(profile[k]);
    double cost = ContextualPathCost(m, n, k, ni, h);
    if (cost < best.distance) {
      best.distance = cost;
      best.k = k;
      best.insertions = ni;
      best.deletions = m + ni - n;
      best.substitutions = k - ni - best.deletions;
    }
  }
  return best;
}

TEST(ContextualPruningTest, EquivalentToFullScanOnRandomStrings) {
  Rng rng(1801);
  Alphabet ab("abcd");
  for (int t = 0; t < 300; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 14);
    std::string y = StringGen::UniformLength(rng, ab, 0, 14);
    auto fast = ContextualDistanceDetailed(x, y);
    auto full = FullScan(x, y);
    EXPECT_DOUBLE_EQ(fast.distance, full.distance) << "x=" << x << " y=" << y;
    EXPECT_EQ(fast.k, full.k);
    EXPECT_EQ(fast.insertions, full.insertions);
  }
}

TEST(ContextualPruningTest, EquivalentOnSimilarStrings) {
  // Similar strings are where the pruning bites hardest (small dC).
  Rng rng(1802);
  Alphabet ab("abcdefgh");
  for (int t = 0; t < 100; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 10, 40);
    std::string y = x;
    for (int e = 0; e < 3; ++e) {
      if (!y.empty()) y[rng.Index(y.size())] = ab.symbol(rng.Index(ab.size()));
    }
    auto fast = ContextualDistanceDetailed(x, y);
    auto full = FullScan(x, y);
    EXPECT_DOUBLE_EQ(fast.distance, full.distance);
  }
}

TEST(ContextualPruningTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(ContextualDistanceDetailed("", "").distance, 0.0);
  auto r1 = ContextualDistanceDetailed("abc", "");
  auto r2 = FullScan("abc", "");
  EXPECT_DOUBLE_EQ(r1.distance, r2.distance);
  auto r3 = ContextualDistanceDetailed("", "xyz");
  EXPECT_DOUBLE_EQ(r3.distance, FullScan("", "xyz").distance);
  // The derived mismatch witness must still be exact.
  EXPECT_NEAR(ContextualDistanceDetailed("abc", "dea").distance, 0.9, 1e-12);
}

TEST(ContextualPruningTest, PruningSpeedsUpSimilarLongStrings) {
  // One substitution between two 600-symbol strings: dC ~ 1/600, so the
  // pruned loop stops after a handful of layers while the full profile
  // computes all 1200.
  std::string x(600, 'a');
  std::string y = x;
  y[300] = 'b';

  Stopwatch w1;
  auto fast = ContextualDistanceDetailed(x, y);
  double fast_s = w1.Seconds();
  Stopwatch w2;
  auto profile = MaxInsertionProfile(x, y);
  double full_s = w2.Seconds();

  EXPECT_NEAR(fast.distance, 1.0 / 600.0, 1e-12);
  ASSERT_FALSE(profile.empty());
  // The pruned run must be dramatically faster; allow generous slack for
  // timer noise but this is typically >100x.
  EXPECT_LT(fast_s, full_s / 5.0);
}

}  // namespace
}  // namespace cned
