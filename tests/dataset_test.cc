#include "datasets/dataset.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace cned {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/cned_dataset_test.txt";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST(DatasetTest, AddUnlabeled) {
  Dataset ds;
  ds.Add("hello");
  ds.Add("world");
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_FALSE(ds.labeled());
}

TEST(DatasetTest, AddLabeled) {
  Dataset ds;
  ds.Add("one", 1);
  ds.Add("two", 2);
  EXPECT_TRUE(ds.labeled());
  EXPECT_EQ(ds.labels[1], 2);
}

TEST(DatasetTest, MixingLabelModesThrows) {
  Dataset ds;
  ds.Add("plain");
  EXPECT_THROW(ds.Add("tagged", 3), std::logic_error);
  Dataset ds2;
  ds2.Add("tagged", 3);
  EXPECT_THROW(ds2.Add("plain"), std::logic_error);
}

TEST(DatasetTest, MeanLength) {
  Dataset ds;
  ds.Add("ab");
  ds.Add("abcd");
  EXPECT_DOUBLE_EQ(ds.MeanLength(), 3.0);
  EXPECT_DOUBLE_EQ(Dataset().MeanLength(), 0.0);
}

TEST_F(DatasetIoTest, SaveLoadRoundtripLabeled) {
  Dataset ds;
  ds.Add("alpha", 0);
  ds.Add("beta", 1);
  ds.SaveText(path_);
  Dataset back = Dataset::LoadText(path_);
  EXPECT_EQ(back.strings, ds.strings);
  EXPECT_EQ(back.labels, ds.labels);
}

TEST_F(DatasetIoTest, SaveLoadRoundtripUnlabeled) {
  Dataset ds;
  ds.Add("uno");
  ds.Add("dos");
  ds.SaveText(path_);
  Dataset back = Dataset::LoadText(path_);
  EXPECT_EQ(back.strings, ds.strings);
  EXPECT_FALSE(back.labeled());
}

TEST_F(DatasetIoTest, LoadLinesStripsCarriageReturns) {
  {
    std::ofstream out(path_);
    out << "casa\r\n" << "perro\n" << "\n" << "gato\n";
  }
  Dataset ds = Dataset::LoadLines(path_);
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.strings[0], "casa");
  EXPECT_EQ(ds.strings[1], "perro");
  EXPECT_EQ(ds.strings[2], "gato");
}

TEST(DatasetTest, LoadMissingFileThrows) {
  EXPECT_THROW(Dataset::LoadText("/nonexistent/file.txt"), std::runtime_error);
  EXPECT_THROW(Dataset::LoadLines("/nonexistent/file.txt"), std::runtime_error);
}

}  // namespace
}  // namespace cned
