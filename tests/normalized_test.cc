#include "distances/normalized.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "distances/levenshtein.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(DsumTest, PaperTriangleCounterexample) {
  // Paper §2.2: x = ab, y = aba, z = ba.
  // dsum(ab,aba) + dsum(aba,ba) = 1/5 + 1/5 < dsum(ab,ba) = 2/4.
  double xy = DsumDistance("ab", "aba");
  double yz = DsumDistance("aba", "ba");
  double xz = DsumDistance("ab", "ba");
  EXPECT_DOUBLE_EQ(xy, 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(yz, 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(xz, 2.0 / 4.0);
  EXPECT_GT(xz, xy + yz);  // triangle inequality violated
}

TEST(DmaxTest, PaperTriangleCounterexample) {
  // Same triple breaks dmax: 1/3 + 1/3 < 1? No: dmax(ab,aba)=1/3,
  // dmax(aba,ba)=1/3, dmax(ab,ba)=2/2=1 > 2/3.
  double xy = DmaxDistance("ab", "aba");
  double yz = DmaxDistance("aba", "ba");
  double xz = DmaxDistance("ab", "ba");
  EXPECT_DOUBLE_EQ(xy, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(yz, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(xz, 1.0);
  EXPECT_GT(xz, xy + yz);
}

TEST(DminTest, PaperTriangleCounterexample) {
  // Paper §2.2 for dmin: x = b, y = ba, z = aa.
  double xy = DminDistance("b", "ba");
  double yz = DminDistance("ba", "aa");
  double xz = DminDistance("b", "aa");
  EXPECT_DOUBLE_EQ(xy, 1.0);          // dE=1, min len 1
  EXPECT_DOUBLE_EQ(yz, 1.0 / 2.0);    // dE=1, min len 2
  EXPECT_DOUBLE_EQ(xz, 2.0);          // dE=2, min len 1
  EXPECT_GT(xz, xy + yz);
}

TEST(DybTest, FormulaMatchesDefinition) {
  Rng rng(4);
  Alphabet ab("abc");
  for (int i = 0; i < 200; ++i) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 15);
    std::string y = StringGen::UniformLength(rng, ab, 0, 15);
    double de = static_cast<double>(LevenshteinDistance(x, y));
    double expected = (x.empty() && y.empty())
                          ? 0.0
                          : 2.0 * de / (static_cast<double>(x.size() + y.size()) + de);
    EXPECT_DOUBLE_EQ(DybDistance(x, y), expected);
  }
}

TEST(DybTest, RangeZeroToOne) {
  Rng rng(5);
  Alphabet ab("ab");
  for (int i = 0; i < 300; ++i) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 12);
    std::string y = StringGen::UniformLength(rng, ab, 0, 12);
    double d = DybDistance(x, y);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(DybTest, CompletelyDifferentStringsApproachOne) {
  // Disjoint alphabets, equal length: dE = n, dYB = 2n/(2n+n) = 2/3.
  EXPECT_NEAR(DybDistance("aaaa", "bbbb"), 2.0 / 3.0, 1e-12);
  // Maximum value 1 is reached against the empty string.
  EXPECT_DOUBLE_EQ(DybDistance("", "abc"), 1.0);
}

TEST(DybTest, TriangleInequalityHolds) {
  // Yujian & Bo proved dYB is a metric; spot-check many random triples.
  Rng rng(6);
  Alphabet ab("ab");
  for (int i = 0; i < 500; ++i) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 10);
    std::string y = StringGen::UniformLength(rng, ab, 0, 10);
    std::string z = StringGen::UniformLength(rng, ab, 0, 10);
    EXPECT_LE(DybDistance(x, z), DybDistance(x, y) + DybDistance(y, z) + 1e-12);
  }
}

TEST(NormalizedTest, IdentityAndSymmetryAll) {
  Rng rng(7);
  Alphabet ab("abc");
  for (int i = 0; i < 100; ++i) {
    std::string x = StringGen::UniformLength(rng, ab, 1, 10);
    std::string y = StringGen::UniformLength(rng, ab, 1, 10);
    for (auto f : {DsumDistance, DmaxDistance, DminDistance, DybDistance}) {
      EXPECT_DOUBLE_EQ(f(x, x), 0.0);
      EXPECT_DOUBLE_EQ(f(x, y), f(y, x));
    }
  }
}

TEST(NormalizedTest, EmptyEmptyIsZero) {
  EXPECT_DOUBLE_EQ(DsumDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(DmaxDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(DminDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(DybDistance("", ""), 0.0);
}

TEST(NormalizedTest, AdapterMetadata) {
  EXPECT_EQ(SumNormalizedDistance().name(), "dsum");
  EXPECT_FALSE(SumNormalizedDistance().is_metric());
  EXPECT_EQ(MaxNormalizedDistance().name(), "dmax");
  EXPECT_FALSE(MaxNormalizedDistance().is_metric());
  EXPECT_EQ(MinNormalizedDistance().name(), "dmin");
  EXPECT_FALSE(MinNormalizedDistance().is_metric());
  EXPECT_EQ(YujianBoDistance().name(), "dYB");
  EXPECT_TRUE(YujianBoDistance().is_metric());
}

}  // namespace
}  // namespace cned
