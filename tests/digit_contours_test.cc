#include "datasets/digit_contours.h"

#include <gtest/gtest.h>

#include "strings/alphabet.h"

namespace cned {
namespace {

// Freeman directions, y down: 0=E,1=NE,2=N,3=NW,4=W,5=SW,6=S,7=SE.
constexpr int kDx[8] = {1, 1, 0, -1, -1, -1, 0, 1};
constexpr int kDy[8] = {0, -1, -1, -1, 0, 1, 1, 1};

TEST(TraceChainCodeTest, SquareBlock) {
  // A 2x2 block in a 4x4 bitmap: the boundary visits all four pixels.
  std::vector<std::uint8_t> bmp(16, 0);
  bmp[1 * 4 + 1] = bmp[1 * 4 + 2] = bmp[2 * 4 + 1] = bmp[2 * 4 + 2] = 1;
  std::string code = TraceChainCode(bmp, 4, 4);
  EXPECT_EQ(code, "0642");
}

TEST(TraceChainCodeTest, SinglePixelHasNoBoundaryPath) {
  std::vector<std::uint8_t> bmp(9, 0);
  bmp[4] = 1;
  EXPECT_EQ(TraceChainCode(bmp, 3, 3), "");
}

TEST(TraceChainCodeTest, EmptyBitmap) {
  std::vector<std::uint8_t> bmp(9, 0);
  EXPECT_EQ(TraceChainCode(bmp, 3, 3), "");
}

TEST(TraceChainCodeTest, ChainCodeIsClosed) {
  // Horizontal bar: net displacement of the chain code must be zero.
  std::vector<std::uint8_t> bmp(8 * 3, 0);
  for (int x = 1; x < 7; ++x) bmp[1 * 8 + x] = 1;
  std::string code = TraceChainCode(bmp, 8, 3);
  ASSERT_FALSE(code.empty());
  int dx = 0, dy = 0;
  for (char c : code) {
    int d = c - '0';
    ASSERT_GE(d, 0);
    ASSERT_LT(d, 8);
    dx += kDx[d];
    dy += kDy[d];
  }
  EXPECT_EQ(dx, 0);
  EXPECT_EQ(dy, 0);
}

TEST(TraceChainCodeTest, IgnoresSmallerSecondComponent) {
  // Big block + distant lone pixel: the lone pixel must not break tracing.
  std::vector<std::uint8_t> bmp(10 * 10, 0);
  for (int y = 1; y <= 3; ++y) {
    for (int x = 1; x <= 3; ++x) bmp[y * 10 + x] = 1;
  }
  bmp[8 * 10 + 8] = 1;
  std::string code = TraceChainCode(bmp, 10, 10);
  EXPECT_GE(code.size(), 8u);  // the 3x3 block boundary
}

TEST(TraceChainCodeTest, SizeMismatchThrows) {
  std::vector<std::uint8_t> bmp(5, 0);
  EXPECT_THROW(TraceChainCode(bmp, 3, 3), std::invalid_argument);
}

TEST(RenderDigitChainCodeTest, ProducesValidChainCodes) {
  DigitContourOptions opt;
  Alphabet cc = Alphabet::ChainCode();
  for (int digit = 0; digit <= 9; ++digit) {
    std::string code = RenderDigitChainCode(digit, 1234 + digit, opt);
    EXPECT_GE(code.size(), 24u) << "digit " << digit;
    EXPECT_TRUE(cc.ContainsAll(code)) << "digit " << digit;
  }
}

TEST(RenderDigitChainCodeTest, ClosedContours) {
  DigitContourOptions opt;
  for (int digit = 0; digit <= 9; ++digit) {
    std::string code = RenderDigitChainCode(digit, 99 + digit, opt);
    int dx = 0, dy = 0;
    for (char c : code) {
      dx += kDx[c - '0'];
      dy += kDy[c - '0'];
    }
    EXPECT_EQ(dx, 0) << "digit " << digit;
    EXPECT_EQ(dy, 0) << "digit " << digit;
  }
}

TEST(RenderDigitChainCodeTest, DeterministicPerSeed) {
  DigitContourOptions opt;
  EXPECT_EQ(RenderDigitChainCode(5, 42, opt), RenderDigitChainCode(5, 42, opt));
  EXPECT_NE(RenderDigitChainCode(5, 42, opt), RenderDigitChainCode(5, 43, opt));
}

TEST(RenderDigitChainCodeTest, RejectsInvalidDigit) {
  DigitContourOptions opt;
  EXPECT_THROW(RenderDigitChainCode(-1, 1, opt), std::invalid_argument);
  EXPECT_THROW(RenderDigitChainCode(10, 1, opt), std::invalid_argument);
}

TEST(GenerateDigitContoursTest, BalancedLabelledDataset) {
  DigitContourOptions opt;
  opt.per_class = 12;
  Dataset ds = GenerateDigitContours(opt);
  EXPECT_EQ(ds.size(), 120u);
  ASSERT_TRUE(ds.labeled());
  std::vector<int> counts(10, 0);
  for (int label : ds.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 10);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int c : counts) EXPECT_EQ(c, 12);
}

TEST(GenerateDigitContoursTest, Deterministic) {
  DigitContourOptions opt;
  opt.per_class = 5;
  EXPECT_EQ(GenerateDigitContours(opt).strings,
            GenerateDigitContours(opt).strings);
}

TEST(GenerateDigitContoursTest, ScribeVariabilityWithinClass) {
  DigitContourOptions opt;
  opt.per_class = 6;
  Dataset ds = GenerateDigitContours(opt);
  // Two samples of the same class from different "scribes" must differ (no
  // two identical renders), as in the unnormalised NIST data.
  int identical = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t j = i + 1; j < ds.size(); ++j) {
      if (ds.strings[i] == ds.strings[j]) ++identical;
    }
  }
  EXPECT_LT(identical, 3);
}

TEST(GenerateDigitContoursTest, RejectsZeroPerClass) {
  DigitContourOptions opt;
  opt.per_class = 0;
  EXPECT_THROW(GenerateDigitContours(opt), std::invalid_argument);
}

}  // namespace
}  // namespace cned
