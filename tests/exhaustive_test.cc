#include "search/exhaustive.h"

#include <gtest/gtest.h>

#include "distances/registry.h"
#include "search/counting_distance.h"

namespace cned {
namespace {

TEST(ExhaustiveTest, FindsNearestByHand) {
  std::vector<std::string> protos{"casa", "cosa", "taza", "mesa"};
  ExhaustiveSearch s(protos, MakeDistance("dE"));
  auto r = s.Nearest("cesa");
  EXPECT_TRUE(r.index == 0 || r.index == 1);  // casa/cosa both at distance 1
  EXPECT_DOUBLE_EQ(r.distance, 1.0);
  EXPECT_EQ(s.Nearest("casa").index, 0u);
  EXPECT_DOUBLE_EQ(s.Nearest("casa").distance, 0.0);
}

TEST(ExhaustiveTest, TieBreaksTowardSmallestIndex) {
  std::vector<std::string> protos{"aa", "ab"};
  ExhaustiveSearch s(protos, MakeDistance("dE"));
  // "ac" is at distance 1 from both; the first prototype wins.
  EXPECT_EQ(s.Nearest("ac").index, 0u);
}

TEST(ExhaustiveTest, OneDistanceCallPerPrototype) {
  std::vector<std::string> protos{"a", "b", "c", "d", "e"};
  auto counter = std::make_shared<CountingDistance>(MakeDistance("dE"));
  ExhaustiveSearch s(protos, counter);
  s.Nearest("x");
  EXPECT_EQ(counter->count(), protos.size());
}

TEST(ExhaustiveTest, KNearestSortedAscending) {
  std::vector<std::string> protos{"aaaa", "aaab", "aabb", "abbb", "bbbb"};
  ExhaustiveSearch s(protos, MakeDistance("dE"));
  auto top3 = s.KNearest("aaaa", 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].index, 0u);
  EXPECT_DOUBLE_EQ(top3[0].distance, 0.0);
  EXPECT_LE(top3[0].distance, top3[1].distance);
  EXPECT_LE(top3[1].distance, top3[2].distance);
}

TEST(ExhaustiveTest, KNearestClampsToSetSize) {
  std::vector<std::string> protos{"a", "b"};
  ExhaustiveSearch s(protos, MakeDistance("dE"));
  EXPECT_EQ(s.KNearest("a", 10).size(), 2u);
}

TEST(ExhaustiveTest, EmptyPrototypeSetThrows) {
  std::vector<std::string> empty;
  EXPECT_THROW(ExhaustiveSearch(empty, MakeDistance("dE")),
               std::invalid_argument);
}

}  // namespace
}  // namespace cned
