#include "datasets/dictionary_gen.h"

#include <set>

#include <gtest/gtest.h>

#include "strings/alphabet.h"

namespace cned {
namespace {

TEST(DictionaryGenTest, ProducesRequestedCount) {
  DictionaryOptions opt;
  opt.word_count = 500;
  Dataset ds = GenerateDictionary(opt);
  EXPECT_EQ(ds.size(), 500u);
  EXPECT_FALSE(ds.labeled());
}

TEST(DictionaryGenTest, DeterministicPerSeed) {
  DictionaryOptions opt;
  opt.word_count = 200;
  opt.seed = 7;
  EXPECT_EQ(GenerateDictionary(opt).strings, GenerateDictionary(opt).strings);
  DictionaryOptions other = opt;
  other.seed = 8;
  EXPECT_NE(GenerateDictionary(opt).strings,
            GenerateDictionary(other).strings);
}

TEST(DictionaryGenTest, WordsAreUniqueLatinAndNonEmpty) {
  DictionaryOptions opt;
  opt.word_count = 1000;
  Dataset ds = GenerateDictionary(opt);
  Alphabet latin = Alphabet::Latin();
  std::set<std::string> uniq;
  for (const auto& w : ds.strings) {
    EXPECT_FALSE(w.empty());
    EXPECT_TRUE(latin.ContainsAll(w)) << w;
    uniq.insert(w);
  }
  EXPECT_EQ(uniq.size(), ds.size());
}

TEST(DictionaryGenTest, RealisticLengthDistribution) {
  DictionaryOptions opt;
  opt.word_count = 2000;
  Dataset ds = GenerateDictionary(opt);
  double mean = ds.MeanLength();
  EXPECT_GT(mean, 3.0);
  EXPECT_LT(mean, 14.0);
  std::size_t max_len = 0;
  for (const auto& w : ds.strings) max_len = std::max(max_len, w.size());
  EXPECT_LT(max_len, 30u);
}

TEST(DictionaryGenTest, FamiliesShareStems) {
  // With family_probability high, many words must share a long prefix with
  // another word (inflection families).
  DictionaryOptions opt;
  opt.word_count = 800;
  opt.family_probability = 0.6;
  Dataset ds = GenerateDictionary(opt);
  std::set<std::string> words(ds.strings.begin(), ds.strings.end());
  int with_family = 0;
  for (const auto& w : ds.strings) {
    for (std::size_t cut = 4; cut < w.size(); ++cut) {
      if (words.count(w.substr(0, cut))) {
        ++with_family;
        break;
      }
    }
  }
  EXPECT_GT(with_family, 50);
}

TEST(DictionaryGenTest, RejectsBadOptions) {
  DictionaryOptions opt;
  opt.min_syllables = 0;
  EXPECT_THROW(GenerateDictionary(opt), std::invalid_argument);
  DictionaryOptions opt2;
  opt2.min_syllables = 4;
  opt2.max_syllables = 2;
  EXPECT_THROW(GenerateDictionary(opt2), std::invalid_argument);
}

}  // namespace
}  // namespace cned
