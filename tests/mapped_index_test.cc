// Cross-index differential fuzz harness for the zero-copy serving tier:
// for randomized dictionaries over every registered distance, a mapped
// (`PrototypeStore::Map` / `Laesa::Map` / `ShardedPrototypeStore::Map` /
// `ShardedLaesa::Map`) index must answer Nearest and KNearest with
// bit-identical neighbours, distances AND QueryStats to (a) the freshly
// built index, (b) the copy-loading `LoadBinary`/`Load` path, and (c) — for
// the sharded family at every shard count S in {1, 2, 4, 8} — the flat
// single-store reference. The mapped serving path must also drive the
// batch engine (plain and two-stage pivot pipeline) and Classify
// identically, and re-snapshotting a mapped object must reproduce the file
// byte for byte.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/perturb.h"
#include "datasets/prototype_store.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/registry.h"
#include "search/batch_engine.h"
#include "search/laesa.h"
#include "search/sharded_laesa.h"
#include "tests/snapshot_test_util.h"

namespace cned {
namespace {

/// Everything one query answers: 1-NN and k-NN results with their stats.
struct Probe {
  NeighborResult nearest;
  QueryStats nearest_stats;
  std::vector<NeighborResult> knn;
  QueryStats knn_stats;
};

Probe ProbeQuery(const NearestNeighborSearcher& searcher, std::string_view q,
                 std::size_t k) {
  Probe p;
  p.nearest = searcher.Nearest(q, &p.nearest_stats);
  p.knn = searcher.KNearest(q, k, &p.knn_stats);
  return p;
}

/// Bit-identity across every field — EXPECT_EQ on the distances compares
/// the exact double values, not an approximation.
void ExpectIdentical(const Probe& a, const Probe& b, const std::string& ctx) {
  EXPECT_EQ(a.nearest.index, b.nearest.index) << ctx;
  EXPECT_EQ(a.nearest.distance, b.nearest.distance) << ctx;
  EXPECT_TRUE(a.nearest_stats == b.nearest_stats) << ctx;
  ASSERT_EQ(a.knn.size(), b.knn.size()) << ctx;
  for (std::size_t i = 0; i < a.knn.size(); ++i) {
    EXPECT_EQ(a.knn[i].index, b.knn[i].index) << ctx << " k-rank " << i;
    EXPECT_EQ(a.knn[i].distance, b.knn[i].distance) << ctx << " k-rank " << i;
  }
  EXPECT_TRUE(a.knn_stats == b.knn_stats) << ctx;
}

TEST(MappedIndexTest, FlatDifferentialFuzzAcrossAllDistances) {
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    const auto words = Words(36 + 17 * trial, 9000 + trial);
    PrototypeStore store(words);
    Rng rng(9100 + trial);
    const auto queries = MakeQueries(words, 6, 2, Alphabet::Latin(), rng);

    TempFile store_file("fuzz_store_" + std::to_string(trial));
    store.SaveBinary(store_file.path());
    PrototypeStore copy_store = PrototypeStore::LoadBinary(store_file.path());
    PrototypeStore mapped_store = PrototypeStore::Map(store_file.path());
    EXPECT_FALSE(copy_store.mapped());
    ASSERT_TRUE(mapped_store.mapped());

    for (const auto& name : AllDistanceNames()) {
      auto dist = MakeDistance(name);
      Laesa built(store, dist, 5);
      TempFile index_file("fuzz_laesa_" + std::to_string(trial) + "_" + name);
      built.Save(index_file.path());
      Laesa copied = Laesa::Load(index_file.path(), copy_store, dist);
      Laesa mapped = Laesa::Map(index_file.path(), mapped_store, dist);
      ASSERT_TRUE(mapped.mapped());
      EXPECT_EQ(mapped.pivots(), built.pivots()) << name;

      for (const auto& q : queries) {
        const std::string ctx =
            "trial " + std::to_string(trial) + " " + name + " q=" + q;
        const Probe b = ProbeQuery(built, q, 3);
        ExpectIdentical(b, ProbeQuery(copied, q, 3), ctx + " [copy]");
        ExpectIdentical(b, ProbeQuery(mapped, q, 3), ctx + " [map]");
      }
    }
  }
}

TEST(MappedIndexTest, ShardedDifferentialFuzzAcrossDistancesAndShardCounts) {
  const auto words = Words(52, 9500);
  std::vector<int> labels(words.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 3);
  }
  Rng rng(9501);
  const auto queries = MakeQueries(words, 5, 2, Alphabet::Latin(), rng);

  for (const auto& name : AllDistanceNames()) {
    auto dist = MakeDistance(name);
    // Flat single-store reference: the sharded sweep is contractually
    // bit-identical to it, and the mapped sweep must inherit that.
    PrototypeStore flat_store(words);
    Laesa flat(flat_store, dist, 5);

    for (std::size_t shards : {1u, 2u, 4u, 8u}) {
      ShardedPrototypeStore store(words, shards, labels);
      ShardedLaesa built(store, dist, 5);
      TempFile store_file("fuzz_sstore_" + name + std::to_string(shards));
      TempFile index_file("fuzz_slaesa_" + name + std::to_string(shards));
      store.SaveBinary(store_file.path());
      built.Save(index_file.path());

      ShardedPrototypeStore copy_store =
          ShardedPrototypeStore::LoadBinary(store_file.path());
      ShardedLaesa copied =
          ShardedLaesa::Load(index_file.path(), copy_store, dist);
      ShardedPrototypeStore mapped_store =
          ShardedPrototypeStore::Map(store_file.path());
      ASSERT_TRUE(mapped_store.mapped());
      EXPECT_EQ(mapped_store.labels(), labels);
      ShardedLaesa mapped =
          ShardedLaesa::Map(index_file.path(), mapped_store, dist);
      ASSERT_TRUE(mapped.mapped());
      EXPECT_EQ(mapped.pivots(), built.pivots()) << name;

      for (const auto& q : queries) {
        const std::string ctx =
            name + " S=" + std::to_string(shards) + " q=" + q;
        const Probe b = ProbeQuery(built, q, 3);
        ExpectIdentical(b, ProbeQuery(flat, q, 3), ctx + " [flat]");
        ExpectIdentical(b, ProbeQuery(copied, q, 3), ctx + " [copy]");
        ExpectIdentical(b, ProbeQuery(mapped, q, 3), ctx + " [map]");
      }
    }
  }
}

// The mapped serving path must drive the batch engine — plain fan-out and
// the two-stage pivot pipeline — and Classify exactly like the built index.
TEST(MappedIndexTest, MappedServingBatchesAndClassifiesIdentically) {
  const auto words = Words(60, 9600);
  std::vector<int> labels(words.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 4);
  }
  ShardedPrototypeStore store(words, 4, labels);
  auto dist = MakeDistance("dYB");
  ShardedLaesa built(store, dist, 6);
  TempFile store_file("serve_store");
  TempFile index_file("serve_index");
  store.SaveBinary(store_file.path());
  built.Save(index_file.path());
  ShardedPrototypeStore mapped_store =
      ShardedPrototypeStore::Map(store_file.path());
  ShardedLaesa mapped = ShardedLaesa::Map(index_file.path(), mapped_store, dist);

  Rng rng(9601);
  auto query_words = MakeQueries(words, 9, 2, Alphabet::Latin(), rng);
  query_words.push_back(query_words.front());  // a duplicate for the dedup path
  PrototypeStore queries(query_words);

  for (const bool pivot_stage : {false, true}) {
    BatchQueryEngine::Options opt;
    opt.pivot_stage = pivot_stage;
    BatchQueryEngine engine_built(built, opt);
    BatchQueryEngine engine_mapped(mapped, opt);

    QueryStats sb, sm;
    std::vector<QueryStats> shard_b, shard_m;
    const auto rb = engine_built.Nearest(queries, &sb, &shard_b);
    const auto rm = engine_mapped.Nearest(queries, &sm, &shard_m);
    ASSERT_EQ(rb.size(), rm.size());
    for (std::size_t i = 0; i < rb.size(); ++i) {
      EXPECT_EQ(rb[i].index, rm[i].index) << i;
      EXPECT_EQ(rb[i].distance, rm[i].distance) << i;
    }
    EXPECT_TRUE(sb == sm);
    ASSERT_EQ(shard_b.size(), shard_m.size());
    for (std::size_t s = 0; s < shard_b.size(); ++s) {
      EXPECT_TRUE(shard_b[s] == shard_m[s]) << "shard " << s;
    }

    EXPECT_EQ(engine_built.Classify(queries, store.labels()),
              engine_mapped.Classify(queries, mapped_store.labels()));
  }
}

TEST(MappedIndexTest, MappedStoreIsReadOnlyAndResavesByteIdentically) {
  const auto words = Words(30, 9700);
  PrototypeStore store(words);
  TempFile store_file("ro_store");
  store.SaveBinary(store_file.path());
  PrototypeStore mapped = PrototypeStore::Map(store_file.path());
  EXPECT_THROW(mapped.Add("xyz"), std::logic_error);

  // Re-snapshotting through the views must reproduce the file bit for bit
  // (the serving tier can re-publish a snapshot it only ever mapped).
  TempFile resaved("ro_store_resave");
  mapped.SaveBinary(resaved.path());
  EXPECT_EQ(ReadAll(resaved.path()), ReadAll(store_file.path()));

  Laesa index(store, MakeDistance("dE"), 4);
  TempFile index_file("ro_index");
  index.Save(index_file.path());
  Laesa mapped_index =
      Laesa::Map(index_file.path(), mapped, MakeDistance("dE"));
  TempFile index_resaved("ro_index_resave");
  mapped_index.Save(index_resaved.path());
  EXPECT_EQ(ReadAll(index_resaved.path()), ReadAll(index_file.path()));
}

// Copies of a mapped store share the mapping: views stay valid after the
// original is destroyed (the ASan CI job turns a lifetime bug here into a
// hard failure).
TEST(MappedIndexTest, MappedStoreCopiesShareTheMapping) {
  const auto words = Words(25, 9800);
  PrototypeStore store(words);
  TempFile store_file("share_store");
  store.SaveBinary(store_file.path());

  PrototypeStore copy;
  {
    PrototypeStore mapped = PrototypeStore::Map(store_file.path());
    copy = mapped;
  }  // original mapped store destroyed; `copy` co-owns the mapping
  ASSERT_TRUE(copy.mapped());
  ASSERT_EQ(copy.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(copy.view(i), words[i]) << i;
  }
}

}  // namespace
}  // namespace cned
