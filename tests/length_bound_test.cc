// Tests for the length-difference lower bounds (the LAESA sweep's "free
// zeroth pivot"), the DistanceBounded length early-outs, and the common
// prefix/suffix trimming in the Levenshtein kernels.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "distances/levenshtein.h"
#include "distances/normalized.h"
#include "distances/registry.h"
#include "strings/alphabet.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

std::vector<std::string> RandomStrings(std::size_t count, Rng& rng) {
  Alphabet latin = Alphabet::Latin();
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(StringGen::UniformLength(rng, latin, 0, 20));
  }
  return out;
}

TEST(LengthLowerBoundTest, IsAValidLowerBoundForEveryDistance) {
  Rng rng(6101);
  auto strings = RandomStrings(40, rng);
  for (const auto& name : AllDistanceNames()) {
    auto dist = MakeDistance(name);
    for (std::size_t i = 0; i < strings.size(); i += 3) {
      for (std::size_t j = 0; j < strings.size(); j += 5) {
        const auto& x = strings[i];
        const auto& y = strings[j];
        const double lb = dist->LengthLowerBound(x.size(), y.size());
        EXPECT_LE(lb, dist->Distance(x, y) + 1e-12)
            << name << " x=" << x << " y=" << y;
      }
    }
  }
}

TEST(LengthLowerBoundTest, BatchMatchesScalar) {
  Rng rng(6102);
  auto strings = RandomStrings(30, rng);
  std::vector<std::uint32_t> lens;
  for (const auto& s : strings) {
    lens.push_back(static_cast<std::uint32_t>(s.size()));
  }
  for (const auto& name : AllDistanceNames()) {
    auto dist = MakeDistance(name);
    for (std::size_t q : {std::size_t{0}, std::size_t{7}, std::size_t{19}}) {
      std::vector<double> batch(lens.size());
      dist->LengthLowerBounds(q, lens.data(), lens.size(), batch.data());
      for (std::size_t i = 0; i < lens.size(); ++i) {
        EXPECT_DOUBLE_EQ(batch[i], dist->LengthLowerBound(q, lens[i]))
            << name << " qlen=" << q << " i=" << i;
      }
    }
  }
}

TEST(LengthLowerBoundTest, ClosedFormsMatchDefinitions) {
  EditDistance de;
  EXPECT_DOUBLE_EQ(de.LengthLowerBound(10, 3), 7.0);
  EXPECT_DOUBLE_EQ(de.LengthLowerBound(3, 10), 7.0);
  EXPECT_DOUBLE_EQ(de.LengthLowerBound(5, 5), 0.0);
  // dsum: gap / (|x|+|y|); dmax: gap / max; dYB: 2 gap / (|x|+|y|+gap).
  EXPECT_DOUBLE_EQ(DsumLengthLowerBound(10, 4), 6.0 / 14.0);
  EXPECT_DOUBLE_EQ(DmaxLengthLowerBound(10, 4), 6.0 / 10.0);
  EXPECT_DOUBLE_EQ(DminLengthLowerBound(10, 4), 6.0 / 4.0);
  EXPECT_DOUBLE_EQ(DybLengthLowerBound(10, 4), 12.0 / 20.0);
  // Both-empty convention: zero, no division by zero.
  EXPECT_DOUBLE_EQ(DsumLengthLowerBound(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(DybLengthLowerBound(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(DminLengthLowerBound(0, 3), 3.0);  // min clamped to 1
}

TEST(LengthEarlyOutTest, BoundedReturnsBoundOnLengthGap) {
  // When the length gap alone reaches the bound, DistanceBounded must
  // report an abandoned evaluation (value >= bound) without needing DP.
  const std::string x = "aaaaaaaaaa";  // 10
  const std::string y = "aaa";         // 3 -> gap 7
  for (const auto& name : {"dE", "dsum", "dmax", "dmin", "dYB", "dMV"}) {
    auto dist = MakeDistance(name);
    const double lb = dist->LengthLowerBound(x.size(), y.size());
    ASSERT_GT(lb, 0.0) << name;
    // Bound below the length lower bound: abandoned.
    EXPECT_GE(dist->DistanceBounded(x, y, lb * 0.5), lb * 0.5) << name;
    // Bound above the true distance: exact.
    const double d = dist->Distance(x, y);
    EXPECT_DOUBLE_EQ(dist->DistanceBounded(x, y, d * 1.5 + 1e-6), d) << name;
  }
}

TEST(AffixTrimmingTest, MatchesUntrimmedReference) {
  // LevenshteinMatrix computes the full untrimmed DP; the trimmed kernel
  // must agree on affix-heavy pairs.
  auto reference = [](std::string_view x, std::string_view y) {
    return LevenshteinMatrix(x, y)[x.size()][y.size()];
  };
  std::vector<std::pair<std::string, std::string>> pairs{
      {"", ""},
      {"abc", "abc"},
      {"prefix_kitten_suffix", "prefix_sitting_suffix"},
      {"shared_head_x", "shared_head_yz"},
      {"x_shared_tail", "yz_shared_tail"},
      {"aaaa", "aa"},
      {"abcdef", "abcxef"},
      {"overlap", "laprevo"},
  };
  for (const auto& [x, y] : pairs) {
    EXPECT_EQ(LevenshteinDistance(x, y), reference(x, y))
        << "x=" << x << " y=" << y;
  }

  Rng rng(6103);
  Alphabet latin = Alphabet::Latin();
  for (int i = 0; i < 200; ++i) {
    // Random core with random shared affixes of random length.
    std::string affix_l = StringGen::UniformLength(rng, latin, 0, 8);
    std::string affix_r = StringGen::UniformLength(rng, latin, 0, 8);
    std::string x =
        affix_l + StringGen::UniformLength(rng, latin, 0, 10) + affix_r;
    std::string y =
        affix_l + StringGen::UniformLength(rng, latin, 0, 10) + affix_r;
    EXPECT_EQ(LevenshteinDistance(x, y), reference(x, y))
        << "x=" << x << " y=" << y;
    // The banded kernel with trimming keeps the DistanceBounded contract.
    const auto exact = reference(x, y);
    for (std::size_t bound : {std::size_t{1}, std::size_t{3},
                              std::size_t{50}}) {
      const auto b = BoundedLevenshtein(x, y, bound);
      if (exact <= bound) {
        EXPECT_EQ(b, exact) << "x=" << x << " y=" << y << " bound=" << bound;
      } else {
        EXPECT_GT(b, bound) << "x=" << x << " y=" << y << " bound=" << bound;
      }
    }
  }
}

}  // namespace
}  // namespace cned
