#include "metric/histogram.h"

#include <gtest/gtest.h>

namespace cned {
namespace {

TEST(HistogramTest, BinsValuesCorrectly) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.1);   // bin 0
  h.Add(0.3);   // bin 1
  h.Add(0.55);  // bin 2
  h.Add(0.9);   // bin 3
  h.Add(0.95);  // bin 3
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-5.0);
  h.Add(7.0);
  h.Add(1.0);  // hi boundary lands in the last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
}

TEST(HistogramTest, BinCenters) {
  Histogram h(0.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 0.25);
  EXPECT_DOUBLE_EQ(h.BinCenter(3), 1.75);
}

TEST(HistogramTest, StatsTrackRawValues) {
  Histogram h(0.0, 10.0, 5);
  h.Add(2.0);
  h.Add(4.0);
  EXPECT_DOUBLE_EQ(h.stats().mean(), 3.0);
  EXPECT_EQ(h.stats().count(), 2u);
}

TEST(HistogramTest, SeriesFormatHasOneLinePerBin) {
  Histogram h(0.0, 1.0, 3);
  h.Add(0.5);
  std::string s = h.ToSeries();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
}

TEST(HistogramTest, AsciiRendersBars) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 10; ++i) h.Add(0.1);
  h.Add(0.9);
  std::string s = h.ToAscii(20);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace cned
