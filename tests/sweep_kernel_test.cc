// Differential property tests for the dispatched sweep-kernel layer
// (search/sweep_kernel.h): every kernel variant compiled into this binary
// and supported by the running CPU must reproduce the scalar reference
// BIT FOR BIT — on randomised packed tables covering live counts of
// 0/1/odd/non-multiple-of-the-lane-width, +inf bounds left by eliminated
// slots, present and absent skip candidates, slack factors, and sparse /
// duplicated pivot sets — and at the index level, where `Laesa` and
// `ShardedLaesa` (including duplicate-pivot-row ablation builds and the
// batch engine's pivot-stage path) must answer with identical neighbours,
// distances AND QueryStats under every kernel. The quantized entries
// (search/table_quant.h) get the same bitwise differential treatment plus
// an admissibility property test: g_q <= |d - t| elementwise at every
// precision, for rows the QuantRowEncoder actually produces.
//
// The suite runs the same assertions regardless of which variant is
// *active*, so CI exercising CNED_SWEEP_KERNEL=scalar still covers the
// vector lanes of every available kernel.

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/perturb.h"
#include "datasets/prototype_store.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/registry.h"
#include "search/batch_engine.h"
#include "search/laesa.h"
#include "search/sharded_laesa.h"
#include "search/sweep_kernel.h"
#include "search/table_quant.h"
#include "tests/snapshot_test_util.h"

namespace cned {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Restores the startup-active kernel variant when a test is done forcing.
class KernelGuard {
 public:
  KernelGuard() : saved_(ActiveSweepKernels().name) {}
  ~KernelGuard() { SetActiveSweepKernels(saved_); }

 private:
  std::string saved_;
};

/// Non-scalar variants to check against the scalar reference.
std::vector<const SweepKernels*> VariantKernels() {
  std::vector<const SweepKernels*> variants;
  for (const SweepKernels* k : AvailableSweepKernels()) {
    if (std::string_view(k->name) != "scalar") variants.push_back(k);
  }
  return variants;
}

/// The live-count shapes the lane-width-sensitive code paths care about:
/// empty, single, below/at/above one vector, odd, non-multiples of 4 and 8,
/// and a size big enough for many full blocks plus a tail.
const std::size_t kLiveCounts[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 13, 31, 64, 257};

struct PackedInput {
  AlignedBuffer<std::uint32_t> idx;
  AlignedBuffer<double> lower;
};

/// Fills idx with a random strictly ascending id subset (starting at
/// `base`) and lower with random bounds, a fraction of them +inf (the
/// values eliminated slots leave behind).
void MakePacked(std::mt19937_64& rng, std::size_t live, std::uint32_t base,
                PackedInput* in) {
  in->idx.resize(live + 8);
  in->lower.resize(live + 8);
  std::uniform_int_distribution<std::uint32_t> gap(1, 3);
  std::uniform_real_distribution<double> value(0.0, 8.0);
  std::uint32_t id = base;
  for (std::size_t r = 0; r < live; ++r) {
    id += gap(rng);
    in->idx.data()[r] = id;
    const int kind = static_cast<int>(rng() % 8);
    // A few duplicates-by-value and a few infinities among the bounds.
    in->lower.data()[r] =
        kind == 0 ? kInf : (kind == 1 ? 1.5 : value(rng));
  }
}

void ExpectSameResult(const SweepCompactResult& ref,
                      const SweepCompactResult& got, const std::string& ctx) {
  EXPECT_EQ(ref.live, got.live) << ctx;
  EXPECT_EQ(ref.pivots_died, got.pivots_died) << ctx;
  EXPECT_EQ(ref.next, got.next) << ctx;
  EXPECT_EQ(ref.next_pivot, got.next_pivot) << ctx;
  // Bit equality, not numeric equality.
  EXPECT_EQ(std::memcmp(&ref.next_key, &got.next_key, sizeof(double)), 0)
      << ctx << " next_key " << ref.next_key << " vs " << got.next_key;
  EXPECT_EQ(std::memcmp(&ref.next_pivot_key, &got.next_pivot_key,
                        sizeof(double)),
            0)
      << ctx;
}

TEST(SweepKernelTest, UpdateLowerDenseMatchesScalarBitwise) {
  std::mt19937_64 rng(0xD15EA5E);
  std::uniform_real_distribution<double> value(0.0, 8.0);
  for (const SweepKernels* k : VariantKernels()) {
    for (std::size_t n : kLiveCounts) {
      for (int trial = 0; trial < 16; ++trial) {
        std::vector<double> row(n);
        AlignedBuffer<double> ref, got;
        ref.resize(n + 4);
        got.resize(n + 4);
        for (std::size_t i = 0; i < n; ++i) {
          row[i] = trial % 4 == 0 ? 2.5 : value(rng);  // duplicate-row case
          ref.data()[i] = rng() % 16 == 0 ? kInf : value(rng);
          got.data()[i] = ref.data()[i];
        }
        const double d = value(rng);
        ScalarSweepKernels().update_lower_dense(d, row.data(), ref.data(), n);
        k->update_lower_dense(d, row.data(), got.data(), n);
        EXPECT_EQ(std::memcmp(ref.data(), got.data(), n * sizeof(double)), 0)
            << k->name << " n=" << n << " trial=" << trial;
      }
    }
  }
}

TEST(SweepKernelTest, UpdateLowerPackedMatchesScalarBitwise) {
  std::mt19937_64 rng(0xBADF00D);
  std::uniform_real_distribution<double> value(0.0, 8.0);
  for (const SweepKernels* k : VariantKernels()) {
    for (std::size_t live : kLiveCounts) {
      for (std::uint32_t base : {0u, 7u, 129u}) {
        PackedInput ref, got;
        MakePacked(rng, live, base, &ref);
        const std::uint32_t max_id =
            live > 0 ? ref.idx.data()[live - 1] : base;
        std::vector<double> row(max_id - base + 1);
        for (double& v : row) v = value(rng);
        got.idx.resize(live + 8);
        got.lower.resize(live + 8);
        std::memcpy(got.idx.data(), ref.idx.data(),
                    live * sizeof(std::uint32_t));
        std::memcpy(got.lower.data(), ref.lower.data(),
                    live * sizeof(double));
        const double d = value(rng);
        ScalarSweepKernels().update_lower_packed(d, row.data(),
                                                 ref.idx.data(), base,
                                                 ref.lower.data(), live);
        k->update_lower_packed(d, row.data(), got.idx.data(), base,
                               got.lower.data(), live);
        EXPECT_EQ(std::memcmp(ref.lower.data(), got.lower.data(),
                              live * sizeof(double)),
                  0)
            << k->name << " live=" << live << " base=" << base;
      }
    }
  }
}

TEST(SweepKernelTest, FillAbsDiffBoundsMatchesScalarBitwise) {
  std::mt19937_64 rng(0xFEEDFACE);
  for (const SweepKernels* k : VariantKernels()) {
    for (std::size_t n : kLiveCounts) {
      for (std::size_t x_len :
           {std::size_t{0}, std::size_t{3}, std::size_t{40},
            std::size_t{1} << 20, std::size_t{1} << 40}) {
        std::vector<std::uint32_t> lens(n);
        for (std::size_t i = 0; i < n; ++i) {
          switch (rng() % 4) {
            case 0: lens[i] = static_cast<std::uint32_t>(rng() % 64); break;
            case 1: lens[i] = 0; break;
            case 2: lens[i] = 0xFFFFFFFFu; break;  // full u32 range
            default: lens[i] = static_cast<std::uint32_t>(rng()); break;
          }
        }
        // +1 keeps data() non-null at n = 0 (memcmp is declared nonnull).
        std::vector<double> ref(n + 1), got(n + 1);
        ScalarSweepKernels().fill_absdiff_bounds(x_len, lens.data(), n,
                                                 ref.data());
        k->fill_absdiff_bounds(x_len, lens.data(), n, got.data());
        EXPECT_EQ(std::memcmp(ref.data(), got.data(), n * sizeof(double)), 0)
            << k->name << " n=" << n << " x_len=" << x_len;
      }
    }
  }
}

TEST(SweepKernelTest, EliminateAndCompactMatchesScalarBitwise) {
  std::mt19937_64 rng(0xC0FFEE);
  std::uniform_real_distribution<double> value(0.0, 8.0);
  for (const SweepKernels* k : VariantKernels()) {
    for (std::size_t live : kLiveCounts) {
      for (int trial = 0; trial < 24; ++trial) {
        PackedInput ref, got;
        MakePacked(rng, live, trial % 2 ? 11 : 0, &ref);
        got.idx.resize(live + 8);
        got.lower.resize(live + 8);
        std::memcpy(got.idx.data(), ref.idx.data(),
                    live * sizeof(std::uint32_t));
        std::memcpy(got.lower.data(), ref.lower.data(),
                    live * sizeof(double));
        // Skip present (a live id), absent, or the "none" sentinel.
        std::uint32_t skip = 0xFFFFFFFFu;
        if (live > 0 && trial % 3 == 0) {
          skip = ref.idx.data()[rng() % live];
        } else if (trial % 3 == 1) {
          skip = 5;  // usually absent
        }
        const double bound = trial % 5 == 0 ? kInf : value(rng);
        const SweepCompactResult r0 = ScalarSweepKernels().eliminate_and_compact(
            ref.idx.data(), ref.lower.data(), live, skip, bound);
        const SweepCompactResult r1 = k->eliminate_and_compact(
            got.idx.data(), got.lower.data(), live, skip, bound);
        const std::string ctx = std::string(k->name) + " live=" +
                                std::to_string(live) + " trial=" +
                                std::to_string(trial);
        ExpectSameResult(r0, r1, ctx);
        ASSERT_EQ(r0.live, r1.live) << ctx;
        EXPECT_EQ(std::memcmp(ref.idx.data(), got.idx.data(),
                              r0.live * sizeof(std::uint32_t)),
                  0)
            << ctx;
        EXPECT_EQ(std::memcmp(ref.lower.data(), got.lower.data(),
                              r0.live * sizeof(double)),
                  0)
            << ctx;
      }
    }
  }
}

TEST(SweepKernelTest, EliminateAndCompactFlaggedMatchesScalarBitwise) {
  std::mt19937_64 rng(0x5EEDC0DE);
  std::uniform_real_distribution<double> value(0.0, 8.0);
  for (const SweepKernels* k : VariantKernels()) {
    for (std::size_t live : kLiveCounts) {
      for (double slack : {1.0, 1.5, 2.0}) {
        for (int trial = 0; trial < 16; ++trial) {
          PackedInput ref, got;
          MakePacked(rng, live, 0, &ref);
          got.idx.resize(live + 8);
          got.lower.resize(live + 8);
          std::memcpy(got.idx.data(), ref.idx.data(),
                      live * sizeof(std::uint32_t));
          std::memcpy(got.lower.data(), ref.lower.data(),
                      live * sizeof(double));
          // Sparse pivot ranks over the id space (and dense every 16th
          // trial, the all-pivots edge).
          const std::uint32_t max_id =
              live > 0 ? ref.idx.data()[live - 1] : 4;
          std::vector<std::int32_t> rank(max_id + 8, -1);
          std::int32_t next_rank = 0;
          for (std::size_t id = 0; id < rank.size(); ++id) {
            if (rng() % 4 == 0 || trial == 15) rank[id] = next_rank++;
          }
          std::uint32_t skip = 0xFFFFFFFFu;
          if (live > 0 && trial % 2 == 0) skip = ref.idx.data()[rng() % live];
          const double bound = trial % 5 == 0 ? kInf : value(rng);
          const SweepCompactResult r0 =
              ScalarSweepKernels().eliminate_and_compact_flagged(
                  ref.idx.data(), ref.lower.data(), rank.data(), live, skip,
                  slack, bound);
          const SweepCompactResult r1 = k->eliminate_and_compact_flagged(
              got.idx.data(), got.lower.data(), rank.data(), live, skip,
              slack, bound);
          const std::string ctx = std::string(k->name) + " live=" +
                                  std::to_string(live) + " slack=" +
                                  std::to_string(slack) + " trial=" +
                                  std::to_string(trial);
          ExpectSameResult(r0, r1, ctx);
          ASSERT_EQ(r0.live, r1.live) << ctx;
          EXPECT_EQ(std::memcmp(ref.idx.data(), got.idx.data(),
                                r0.live * sizeof(std::uint32_t)),
                    0)
              << ctx;
          EXPECT_EQ(std::memcmp(ref.lower.data(), got.lower.data(),
                                r0.live * sizeof(double)),
                    0)
              << ctx;
        }
      }
    }
  }
}

TEST(SweepKernelTest, CompactSeedMatchesScalarBitwise) {
  std::mt19937_64 rng(0xABCD1234);
  std::uniform_real_distribution<double> value(0.0, 8.0);
  for (const SweepKernels* k : VariantKernels()) {
    for (std::size_t n : kLiveCounts) {
      for (std::uint32_t base : {0u, 17u}) {
        for (int aliased = 0; aliased < 2; ++aliased) {
          AlignedBuffer<double> dense_ref, dense_got, out_ref, out_got;
          AlignedBuffer<std::uint32_t> idx_ref, idx_got;
          dense_ref.resize(n + 4);
          dense_got.resize(n + 4);
          out_ref.resize(n + 4);
          out_got.resize(n + 4);
          idx_ref.resize(n + 4);
          idx_got.resize(n + 4);
          std::vector<std::int32_t> rank(n + 4, -1);
          std::int32_t next_rank = 0;
          for (std::size_t j = 0; j < n; ++j) {
            dense_ref.data()[j] = rng() % 8 == 0 ? kInf : value(rng);
            dense_got.data()[j] = dense_ref.data()[j];
            if (rng() % 5 == 0) rank[j] = next_rank++;
          }
          const double bound = rng() % 4 == 0 ? kInf : value(rng);
          double* lower_out_ref = aliased ? dense_ref.data() : out_ref.data();
          double* lower_out_got = aliased ? dense_got.data() : out_got.data();
          const SweepCompactResult r0 = ScalarSweepKernels().compact_seed(
              dense_ref.data(), rank.data(), n, base, bound, idx_ref.data(),
              lower_out_ref);
          const SweepCompactResult r1 =
              k->compact_seed(dense_got.data(), rank.data(), n, base, bound,
                              idx_got.data(), lower_out_got);
          const std::string ctx = std::string(k->name) + " n=" +
                                  std::to_string(n) + " base=" +
                                  std::to_string(base) +
                                  (aliased ? " aliased" : "");
          ExpectSameResult(r0, r1, ctx);
          ASSERT_EQ(r0.live, r1.live) << ctx;
          EXPECT_EQ(std::memcmp(idx_ref.data(), idx_got.data(),
                                r0.live * sizeof(std::uint32_t)),
                    0)
              << ctx;
          EXPECT_EQ(std::memcmp(lower_out_ref, lower_out_got,
                                r0.live * sizeof(double)),
                    0)
              << ctx;
        }
      }
    }
  }
}

TEST(SweepKernelTest, DispatchRoundTripAndForcedScalar) {
  KernelGuard guard;
  // Scalar is always available and forceable (the CI fallback contract).
  ASSERT_TRUE(SetActiveSweepKernels("scalar"));
  EXPECT_EQ(std::string_view(ActiveSweepKernels().name), "scalar");
  // Unknown names are rejected without changing the active variant.
  EXPECT_FALSE(SetActiveSweepKernels("avx512-unicorn"));
  EXPECT_EQ(std::string_view(ActiveSweepKernels().name), "scalar");
  // "auto" selects the fastest available variant (the last in the list).
  ASSERT_TRUE(SetActiveSweepKernels("auto"));
  EXPECT_EQ(std::string_view(ActiveSweepKernels().name),
            std::string_view(AvailableSweepKernels().back()->name));
  // Every listed variant is individually selectable.
  for (const SweepKernels* k : AvailableSweepKernels()) {
    EXPECT_TRUE(SetActiveSweepKernels(k->name)) << k->name;
    EXPECT_EQ(std::string_view(ActiveSweepKernels().name),
              std::string_view(k->name));
  }
}

/// Everything one query answers across the index entry points.
struct Probe {
  NeighborResult nearest;
  std::vector<NeighborResult> knn;
  std::vector<NeighborResult> range;
  NeighborResult approx;
  std::vector<NeighborResult> staged_knn;
  QueryStats stats;
};

Probe ProbeLaesa(const Laesa& index, std::string_view q) {
  Probe p;
  p.nearest = index.Nearest(q, &p.stats);
  p.knn = index.KNearest(q, 3, &p.stats);
  p.range = index.RangeSearch(q, p.nearest.distance * 1.5 + 1.0, &p.stats);
  p.approx = index.NearestApprox(q, 0.5, &p.stats);
  std::vector<double> row(index.pivot_count());
  index.ComputePivotRow(q, row.data(), &p.stats);
  p.staged_knn = index.KNearestWithPivotRow(q, 3, row.data(), &p.stats);
  return p;
}

Probe ProbeSharded(const ShardedLaesa& index, std::string_view q) {
  Probe p;
  p.nearest = index.Nearest(q, &p.stats);
  p.knn = index.KNearest(q, 3, &p.stats);
  p.approx = index.NearestApprox(q, 0.5, &p.stats);
  std::vector<double> row(index.pivot_count());
  index.ComputePivotRow(q, row.data(), &p.stats);
  p.staged_knn = index.KNearestWithPivotRow(q, 3, row.data(), &p.stats);
  return p;
}

void ExpectIdentical(const Probe& a, const Probe& b, const std::string& ctx) {
  EXPECT_EQ(a.nearest.index, b.nearest.index) << ctx;
  EXPECT_EQ(a.nearest.distance, b.nearest.distance) << ctx;
  EXPECT_EQ(a.approx.index, b.approx.index) << ctx;
  EXPECT_EQ(a.approx.distance, b.approx.distance) << ctx;
  EXPECT_TRUE(a.stats == b.stats)
      << ctx << " computations " << a.stats.distance_computations << " vs "
      << b.stats.distance_computations;
  ASSERT_EQ(a.knn.size(), b.knn.size()) << ctx;
  for (std::size_t i = 0; i < a.knn.size(); ++i) {
    EXPECT_EQ(a.knn[i].index, b.knn[i].index) << ctx << " k-rank " << i;
    EXPECT_EQ(a.knn[i].distance, b.knn[i].distance) << ctx << " k-rank " << i;
  }
  ASSERT_EQ(a.range.size(), b.range.size()) << ctx;
  for (std::size_t i = 0; i < a.range.size(); ++i) {
    EXPECT_EQ(a.range[i].index, b.range[i].index) << ctx << " hit " << i;
    EXPECT_EQ(a.range[i].distance, b.range[i].distance) << ctx << " hit " << i;
  }
  ASSERT_EQ(a.staged_knn.size(), b.staged_knn.size()) << ctx;
  for (std::size_t i = 0; i < a.staged_knn.size(); ++i) {
    EXPECT_EQ(a.staged_knn[i].index, b.staged_knn[i].index) << ctx;
    EXPECT_EQ(a.staged_knn[i].distance, b.staged_knn[i].distance) << ctx;
  }
}

// --- Quantized entries (search/table_quant.h) ------------------------------

constexpr TablePrecision kQuantPrecisions[] = {
    TablePrecision::kF32, TablePrecision::kF16, TablePrecision::kU8};

/// One encoded pivot row plus the view the dispatch helpers consume.
struct QuantRow {
  std::vector<double> exact;
  std::vector<unsigned char> codes;
  QuantRowMeta meta;
  QuantTableView view;
};

QuantRow EncodeRow(TablePrecision prec, std::vector<double> values) {
  QuantRow row;
  row.exact = std::move(values);
  row.codes.resize(row.exact.size() * TablePrecisionBytes(prec) + 8);
  QuantRowEncoder enc;
  enc.Scan(row.exact.data(), row.exact.size());
  enc.Prepare(prec);
  enc.Encode(row.exact.data(), row.exact.size(), row.codes.data());
  row.meta = enc.Finish();
  row.view.precision = prec;
  row.view.q = row.codes.data();
  row.view.rows = &row.meta;
  return row;
}

TEST(SweepKernelTest, QuantizedUpdateLowerDenseMatchesScalarBitwise) {
  std::mt19937_64 rng(0x5CA1AB1E);
  std::uniform_real_distribution<double> value(0.0, 8.0);
  for (const SweepKernels* k : VariantKernels()) {
    for (TablePrecision prec : kQuantPrecisions) {
      for (std::size_t n : kLiveCounts) {
        for (int trial = 0; trial < 8; ++trial) {
          std::vector<double> exact(n);
          for (double& v : exact) {
            v = trial % 4 == 0 ? 2.5 : value(rng);  // duplicate-row case
          }
          const QuantRow row = EncodeRow(prec, exact);
          AlignedBuffer<double> ref, got;
          ref.resize(n + 4);
          got.resize(n + 4);
          for (std::size_t i = 0; i < n; ++i) {
            ref.data()[i] = rng() % 16 == 0 ? kInf : value(rng);
            got.data()[i] = ref.data()[i];
          }
          const double d = value(rng);
          QuantUpdateLowerDense(ScalarSweepKernels(), row.view, 0, n, d,
                                ref.data());
          QuantUpdateLowerDense(*k, row.view, 0, n, d, got.data());
          EXPECT_EQ(std::memcmp(ref.data(), got.data(), n * sizeof(double)),
                    0)
              << k->name << " " << TablePrecisionName(prec) << " n=" << n
              << " trial=" << trial;
        }
      }
    }
  }
}

TEST(SweepKernelTest, QuantizedUpdateLowerPackedMatchesScalarBitwise) {
  std::mt19937_64 rng(0x0DDBA11);
  std::uniform_real_distribution<double> value(0.0, 8.0);
  for (const SweepKernels* k : VariantKernels()) {
    for (TablePrecision prec : kQuantPrecisions) {
      for (std::size_t live : kLiveCounts) {
        for (std::uint32_t base : {0u, 7u, 129u}) {
          PackedInput ref, got;
          MakePacked(rng, live, base, &ref);
          const std::uint32_t max_id =
              live > 0 ? ref.idx.data()[live - 1] : base;
          std::vector<double> exact(max_id - base + 1);
          for (double& v : exact) v = value(rng);
          const QuantRow row = EncodeRow(prec, exact);
          got.idx.resize(live + 8);
          got.lower.resize(live + 8);
          std::memcpy(got.idx.data(), ref.idx.data(),
                      live * sizeof(std::uint32_t));
          std::memcpy(got.lower.data(), ref.lower.data(),
                      live * sizeof(double));
          const double d = value(rng);
          QuantUpdateLowerPacked(ScalarSweepKernels(), row.view, 0,
                                 exact.size(), d, ref.idx.data(), base,
                                 ref.lower.data(), live);
          QuantUpdateLowerPacked(*k, row.view, 0, exact.size(), d,
                                 got.idx.data(), base, got.lower.data(), live);
          EXPECT_EQ(std::memcmp(ref.lower.data(), got.lower.data(),
                                live * sizeof(double)),
                    0)
              << k->name << " " << TablePrecisionName(prec)
              << " live=" << live << " base=" << base;
        }
      }
    }
  }
}

// The property the whole quantization scheme rests on: every quantized
// tightening is an ADMISSIBLE lower bound — g_q <= |d - t| elementwise for
// the exact table entry t, for every precision and every kernel variant.
// Checked on rows spanning narrow, wide, constant and near-zero ranges and
// on query distances inside, outside and far outside the row's range.
//
// The inequality is exact in real arithmetic; the kernels' correctly
// rounded ops can carry it over by ulps of the operands (the u8 arm
// regroups (offset + c*scale) - d as c*scale - (d - offset)), which the
// encoder's gap inflation bounds far below the separation between distinct
// distance values (table_quant.cc, InflateGap). The assertion allows
// exactly that documented ulp-scale slack and nothing more.
TEST(SweepKernelTest, QuantizedBoundsAreAdmissible) {
  std::mt19937_64 rng(0xADA151B1);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double kSpans[] = {1e-9, 0.013, 1.0, 97.0, 4096.0};
  for (const SweepKernels* k : AvailableSweepKernels()) {
    for (TablePrecision prec : kQuantPrecisions) {
      for (double span : kSpans) {
        for (int trial = 0; trial < 12; ++trial) {
          const std::size_t n = 1 + rng() % 96;
          const double lo = unit(rng) * 10.0;
          std::vector<double> exact(n);
          for (double& v : exact) {
            v = trial % 5 == 0 ? lo : lo + unit(rng) * span;  // constant rows
          }
          const QuantRow row = EncodeRow(prec, exact);
          AlignedBuffer<double> lower;
          lower.resize(n + 4);
          const double d = trial % 3 == 0 ? unit(rng) * 3.0 * span
                                          : lo + unit(rng) * span;
          for (std::size_t i = 0; i < n; ++i) lower.data()[i] = 0.0;
          QuantUpdateLowerDense(*k, row.view, 0, n, d, lower.data());
          for (std::size_t i = 0; i < n; ++i) {
            const double slack =
                16.0 * DBL_EPSILON * (std::abs(d) + std::abs(exact[i]));
            EXPECT_LE(lower.data()[i], std::abs(d - exact[i]) + slack)
                << k->name << " " << TablePrecisionName(prec)
                << " span=" << span << " trial=" << trial << " i=" << i
                << " t=" << exact[i] << " d=" << d;
          }
        }
      }
    }
  }
}

TEST(SweepKernelIndexTest, FlatIndexBitIdenticalAcrossKernels) {
  KernelGuard guard;
  const auto words = Words(220, 20260731);
  PrototypeStore store(words);
  Rng rng(4242);
  const auto queries = MakeQueries(words, 12, 2, Alphabet::Latin(), rng);

  for (const char* dist_name : {"dE", "dYB", "dmax"}) {
    auto dist = MakeDistance(dist_name);
    Laesa index(store, dist, 7);
    // Duplicate pivot rows: the ablation constructor accepts repeated pivot
    // indices, which the sweeps must treat as one candidate but two rows.
    Laesa dup(store, dist, std::vector<std::size_t>{3, 3, 17, 42});

    ASSERT_TRUE(SetActiveSweepKernels("scalar"));
    std::vector<Probe> ref, dup_ref;
    for (const auto& q : queries) {
      ref.push_back(ProbeLaesa(index, q));
      dup_ref.push_back(ProbeLaesa(dup, q));
    }
    for (const SweepKernels* k : VariantKernels()) {
      ASSERT_TRUE(SetActiveSweepKernels(k->name));
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const std::string ctx = std::string(dist_name) + " kernel " +
                                k->name + " q=" + queries[i];
        ExpectIdentical(ref[i], ProbeLaesa(index, queries[i]), ctx);
        ExpectIdentical(dup_ref[i], ProbeLaesa(dup, queries[i]),
                        ctx + " [dup pivots]");
      }
    }
  }
}

TEST(SweepKernelIndexTest, ShardedIndexAndEngineBitIdenticalAcrossKernels) {
  KernelGuard guard;
  const auto words = Words(180, 20260801);
  Rng rng(777);
  const auto query_vec = MakeQueries(words, 10, 2, Alphabet::Latin(), rng);
  PrototypeStore queries(query_vec);

  for (const char* dist_name : {"dE", "dYB"}) {
    auto dist = MakeDistance(dist_name);
    for (std::size_t shards : {1u, 3u, 4u}) {
      ShardedPrototypeStore store(words, shards);
      ShardedLaesa index(store, dist, 6);
      BatchQueryEngine::Options opt;
      opt.pivot_stage = true;
      BatchQueryEngine engine(index, opt);

      ASSERT_TRUE(SetActiveSweepKernels("scalar"));
      std::vector<Probe> ref;
      for (const auto& q : query_vec) ref.push_back(ProbeSharded(index, q));
      QueryStats ref_stats;
      const auto ref_batch = engine.Nearest(queries, &ref_stats);

      for (const SweepKernels* k : VariantKernels()) {
        ASSERT_TRUE(SetActiveSweepKernels(k->name));
        for (std::size_t i = 0; i < query_vec.size(); ++i) {
          const std::string ctx = std::string(dist_name) + " S=" +
                                  std::to_string(shards) + " kernel " +
                                  k->name + " q=" + query_vec[i];
          ExpectIdentical(ref[i], ProbeSharded(index, query_vec[i]), ctx);
        }
        QueryStats got_stats;
        const auto got_batch = engine.Nearest(queries, &got_stats);
        EXPECT_TRUE(ref_stats == got_stats)
            << dist_name << " S=" << shards << " kernel " << k->name;
        ASSERT_EQ(ref_batch.size(), got_batch.size());
        for (std::size_t i = 0; i < ref_batch.size(); ++i) {
          EXPECT_EQ(ref_batch[i].index, got_batch[i].index)
              << dist_name << " S=" << shards << " kernel " << k->name;
          EXPECT_EQ(ref_batch[i].distance, got_batch[i].distance)
              << dist_name << " S=" << shards << " kernel " << k->name;
        }
      }
    }
  }
}

}  // namespace
}  // namespace cned
