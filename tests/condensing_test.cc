#include "search/condensing.h"

#include <set>

#include <gtest/gtest.h>

#include "datasets/digit_contours.h"
#include "distances/registry.h"
#include "search/exhaustive.h"
#include "search/knn_classifier.h"

namespace cned {
namespace {

TEST(CondensingTest, KeepsOnePrototypePerClassAtLeast) {
  std::vector<std::string> samples{"aaaa", "aaab", "zzzz", "zzzy"};
  std::vector<int> labels{0, 0, 1, 1};
  auto kept = CondenseTrainingSet(samples, labels, *MakeDistance("dE"));
  ASSERT_GE(kept.size(), 2u);
  bool has0 = false, has1 = false;
  for (std::size_t idx : kept) {
    if (labels[idx] == 0) has0 = true;
    if (labels[idx] == 1) has1 = true;
  }
  EXPECT_TRUE(has0);
  EXPECT_TRUE(has1);
}

TEST(CondensingTest, WellSeparatedClassesCondenseHard) {
  // Tight clusters far apart: one prototype per class suffices.
  std::vector<std::string> samples{"aaaa", "aaab", "aaba", "abaa",
                                   "zzzz", "zzzy", "zzyz", "zyzz"};
  std::vector<int> labels{0, 0, 0, 0, 1, 1, 1, 1};
  auto kept = CondenseTrainingSet(samples, labels, *MakeDistance("dE"));
  EXPECT_EQ(kept.size(), 2u);
}

TEST(CondensingTest, ConsistencyOnTrainingSet) {
  // Hart's invariant: the condensed subset classifies every training
  // sample correctly under 1-NN.
  DigitContourOptions opt;
  opt.per_class = 8;
  opt.seed = 1701;
  opt.distortion = 1.0;
  Dataset train = GenerateDigitContours(opt);
  auto dist = MakeDistance("dC,h");
  CondensedSet sub = Condense(train.strings, train.labels, *dist);
  ASSERT_FALSE(sub.strings.empty());
  ExhaustiveSearch search(sub.strings, dist);
  NearestNeighborClassifier clf(search, sub.labels);
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(clf.Classify(train.strings[i]), train.labels[i]) << i;
  }
}

TEST(CondensingTest, SubsetNoLargerThanOriginal) {
  DigitContourOptions opt;
  opt.per_class = 6;
  opt.seed = 1702;
  Dataset train = GenerateDigitContours(opt);
  auto kept =
      CondenseTrainingSet(train.strings, train.labels, *MakeDistance("dE"));
  EXPECT_LE(kept.size(), train.size());
  EXPECT_GE(kept.size(), 10u);  // at least one per digit class
  // Indices unique and in range.
  std::set<std::size_t> uniq(kept.begin(), kept.end());
  EXPECT_EQ(uniq.size(), kept.size());
  for (std::size_t idx : kept) EXPECT_LT(idx, train.size());
}

TEST(CondensingTest, EmptyAndMismatchedInputs) {
  auto dist = MakeDistance("dE");
  std::vector<std::string> empty;
  std::vector<int> no_labels;
  EXPECT_TRUE(CondenseTrainingSet(empty, no_labels, *dist).empty());
  std::vector<std::string> one{"a"};
  EXPECT_THROW(CondenseTrainingSet(one, no_labels, *dist),
               std::invalid_argument);
}

TEST(CondensingTest, MaterialisedSetMatchesIndices) {
  std::vector<std::string> samples{"aa", "ab", "zz"};
  std::vector<int> labels{0, 0, 1};
  CondensedSet sub = Condense(samples, labels, *MakeDistance("dE"));
  ASSERT_EQ(sub.strings.size(), sub.indices.size());
  ASSERT_EQ(sub.labels.size(), sub.indices.size());
  for (std::size_t i = 0; i < sub.indices.size(); ++i) {
    EXPECT_EQ(sub.strings[i], samples[sub.indices[i]]);
    EXPECT_EQ(sub.labels[i], labels[sub.indices[i]]);
  }
}

}  // namespace
}  // namespace cned
