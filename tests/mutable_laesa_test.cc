// Tests for the live-mutability tier (search/mutable_laesa.h): the
// differential contract (any interleaving of insert/remove/query returns
// exactly what a from-scratch rebuild over the live set returns), tombstone
// masking at every table precision and kernel variant, replay determinism
// (stats included), background merges with epoch-swapped snapshots, and
// concurrent mutate-while-search safety (the TSan job runs this file).

#include "search/mutable_laesa.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "search/batch_engine.h"
#include "search/nn_searcher.h"
#include "search/sweep_kernel.h"
#include "search/table_quant.h"
#include "tests/snapshot_test_util.h"

namespace cned {
namespace {

constexpr TablePrecision kAllPrecisions[] = {
    TablePrecision::kF64, TablePrecision::kF32, TablePrecision::kF16,
    TablePrecision::kU8};

/// Restores the startup-active kernel variant when a test is done forcing.
class KernelGuard {
 public:
  KernelGuard() : saved_(ActiveSweepKernels().name) {}
  ~KernelGuard() { SetActiveSweepKernels(saved_); }

 private:
  std::string saved_;
};

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/cned_mutable_XXXXXX";
    char* p = mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    if (!path.empty()) std::filesystem::remove_all(path);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

/// The brute-force oracle: the live set as (stable id -> string), searched
/// exhaustively with full distances and the global (distance, id) order.
class Model {
 public:
  void Insert(std::uint64_t id, std::string s) { live_[id] = std::move(s); }
  bool Remove(std::uint64_t id) { return live_.erase(id) > 0; }
  std::size_t size() const { return live_.size(); }
  const std::map<std::uint64_t, std::string>& live() const { return live_; }

  std::vector<NeighborResult> KNearest(const StringDistance& dist,
                                       std::string_view q,
                                       std::size_t k) const {
    std::vector<NeighborResult> all;
    all.reserve(live_.size());
    for (const auto& [id, s] : live_) {
      all.push_back({static_cast<std::size_t>(id), dist.Distance(q, s)});
    }
    std::sort(all.begin(), all.end(), NeighborLess);
    if (all.size() > k) all.resize(k);
    return all;
  }

 private:
  std::map<std::uint64_t, std::string> live_;
};

Model ModelFromBase(const std::vector<std::string>& base) {
  Model m;
  for (std::size_t i = 0; i < base.size(); ++i) m.Insert(i, base[i]);
  return m;
}

// The exactness contract an admissible pruner can (and must) honour: the
// distance profile equals the brute-force oracle's rank for rank, every
// returned id is live with its reported distance exactly the true distance,
// and no id repeats. Equal-distance tie *winners* follow the sweep's
// visiting order (as everywhere else in the repo — an equal-distance
// candidate may be eliminated by its lower bound without evaluation), so
// ids are pinned per rank only where the oracle's distances are unique.
void ExpectMatchesOracle(const MutableLaesa& index, const Model& model,
                         const StringDistance& dist,
                         const std::vector<std::string>& queries,
                         std::size_t k, const std::string& ctx) {
  for (const std::string& q : queries) {
    const auto got = index.KNearest(q, k);
    // One extra oracle rank: a distance tie spanning the k boundary makes
    // the last in-window winner ambiguous too.
    const auto want = model.KNearest(dist, q, k + 1);
    ASSERT_EQ(got.size(), std::min(k, want.size()))
        << ctx << " query '" << q << "'";
    std::vector<std::size_t> seen_ids;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].distance, want[i].distance)
          << ctx << " query '" << q << "' rank " << i;
      const auto it = model.live().find(got[i].index);
      ASSERT_NE(it, model.live().end())
          << ctx << " query '" << q << "' rank " << i
          << " returned dead/unknown id " << got[i].index;
      EXPECT_EQ(got[i].distance, dist.Distance(q, it->second))
          << ctx << " query '" << q << "' rank " << i;
      EXPECT_EQ(std::count(seen_ids.begin(), seen_ids.end(), got[i].index), 0)
          << ctx << " duplicate id " << got[i].index;
      seen_ids.push_back(got[i].index);
      const bool unique_rank =
          (i == 0 || want[i].distance != want[i - 1].distance) &&
          (i + 1 >= want.size() || want[i].distance != want[i + 1].distance);
      if (unique_rank) {
        EXPECT_EQ(got[i].index, want[i].index)
            << ctx << " query '" << q << "' rank " << i;
      }
    }
  }
}

// --- The differential anchor: interleavings vs rebuild, replay twins ------

TEST(MutableLaesaTest, InterleavedOpsMatchOracleAndReplayBitIdentical) {
  const auto base = Words(120, 71001);
  auto dist = MakeDistance("dE");
  MutableLaesa a(base, dist);
  MutableLaesa twin(base, dist);  // replays the identical op sequence
  Model model = ModelFromBase(base);

  Rng rng(71002);
  auto queries = MakeQueries(base, 10, 2, Alphabet::Latin(), rng);

  for (int round = 0; round < 6; ++round) {
    // A batch of inserts (perturbed words, so distances are interesting)...
    for (int i = 0; i < 8; ++i) {
      const std::string s =
          base[rng.Index(base.size())] + std::to_string(round * 8 + i);
      const std::uint64_t id = a.Insert(s);
      ASSERT_EQ(twin.Insert(s), id);
      model.Insert(id, s);
    }
    // ...a batch of removes over the whole live id range (base and delta)...
    for (int i = 0; i < 5 && model.size() > 20; ++i) {
      auto it = model.live().begin();
      std::advance(it, rng.Index(model.size()));
      const std::uint64_t victim = it->first;
      ASSERT_TRUE(a.Remove(victim)) << victim;
      ASSERT_TRUE(twin.Remove(victim));
      model.Remove(victim);
    }
    // ...a mid-script merge, applied to both twins identically...
    if (round == 3) {
      ASSERT_TRUE(a.MergeNow());
      ASSERT_TRUE(twin.MergeNow());
      EXPECT_EQ(a.delta_size(), 0u);
      EXPECT_EQ(a.tombstone_count(), 0u);
    }
    // ...then every query must equal the from-scratch answer, and the twin
    // must agree bit for bit, QueryStats included (replay determinism).
    ExpectMatchesOracle(a, model, *dist, queries, 5,
                        "round " + std::to_string(round));
    for (const std::string& q : queries) {
      QueryStats sa, st;
      const auto ra = a.KNearest(q, 5, &sa);
      const auto rt = twin.KNearest(q, 5, &st);
      ASSERT_EQ(ra.size(), rt.size());
      for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].index, rt[i].index);
        EXPECT_EQ(ra[i].distance, rt[i].distance);
      }
      EXPECT_TRUE(sa == st)
          << "round " << round << ": twins diverged on stats ("
          << sa.distance_computations << " vs " << st.distance_computations
          << " computations)";
    }
    EXPECT_EQ(a.size(), model.size());
    EXPECT_EQ(a.epoch(), twin.epoch());
  }
}

// --- Tombstone masking across precisions and kernel variants --------------

TEST(MutableLaesaTest, RemovedIdsNeverSurfaceAtAnyPrecisionOrKernel) {
  const auto words = Words(140, 71003);
  auto dist = MakeDistance("dE");
  Rng rng(71004);
  const auto queries = MakeQueries(words, 8, 2, Alphabet::Latin(), rng);
  // Id 0 is the base index's first pivot — the masking must hold even when
  // the deleted prototype anchors the pivot table.
  const std::vector<std::uint64_t> removals = {0, 1, 17, 50, 99, 139};

  KernelGuard guard;
  for (const TablePrecision precision : kAllPrecisions) {
    MutableLaesa::Options opt;
    opt.table_precision = precision;
    MutableLaesa index(words, dist, opt);
    Model model = ModelFromBase(words);
    for (const std::uint64_t id : removals) {
      ASSERT_TRUE(index.Remove(id));
      model.Remove(id);
    }
    for (const SweepKernels* kern : AvailableSweepKernels()) {
      ASSERT_TRUE(SetActiveSweepKernels(kern->name));
      const std::string ctx = std::string("precision ") +
                              std::to_string(static_cast<int>(precision)) +
                              " kernel " + kern->name;
      for (const std::string& q : queries) {
        const auto knn = index.KNearest(q, 4);
        for (const auto& nr : knn) {
          for (const std::uint64_t id : removals) {
            EXPECT_NE(nr.index, static_cast<std::size_t>(id)) << ctx;
          }
        }
      }
      ExpectMatchesOracle(index, model, *dist, queries, 4, ctx);
    }
  }
}

// --- The delta's own LAESA regime -----------------------------------------

TEST(MutableLaesaTest, DeltaIndexRegimeStaysExactWithDeletes) {
  auto dist = MakeDistance("dE");
  MutableLaesa::Options opt;
  opt.delta_index_threshold = 16;  // force the delta LAESA early
  opt.delta_pivots = 3;
  MutableLaesa index(dist, opt);  // starts empty: everything lives in delta
  Model model;

  const auto words = Words(60, 71005);
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::uint64_t id = index.Insert(words[i]);
    model.Insert(id, words[i]);
  }
  ASSERT_GE(index.delta_size(), opt.delta_index_threshold);
  // Remove a spread that includes the delta index's own pivots (slots 0..2).
  for (const std::uint64_t id : {0ull, 1ull, 2ull, 20ull, 41ull, 59ull}) {
    ASSERT_TRUE(index.Remove(id));
    model.Remove(id);
  }
  Rng rng(71006);
  const auto queries = MakeQueries(words, 12, 2, Alphabet::Latin(), rng);
  ExpectMatchesOracle(index, model, *dist, queries, 5, "delta-laesa");
}

// --- Merges: rewrite, snapshot durability, from-scratch bit-identity ------

TEST(MutableLaesaTest, MergeToSnapshotAndServeMapped) {
  const auto base = Words(100, 71007);
  auto dist = MakeDistance("dE");
  MutableLaesa index(base, dist);
  Model model = ModelFromBase(base);

  Rng rng(71008);
  for (int i = 0; i < 20; ++i) {
    const std::string s = base[rng.Index(base.size())] + "+" +
                          std::to_string(i);
    model.Insert(index.Insert(s), s);
  }
  for (int i = 0; i < 15; ++i) {
    auto it = model.live().begin();
    std::advance(it, rng.Index(model.size()));
    ASSERT_TRUE(index.Remove(it->first));
    model.Remove(it->first);
  }

  TempDir dir;
  ASSERT_TRUE(index.MergeNow(dir.path));
  EXPECT_TRUE(index.merge_error().empty());
  EXPECT_EQ(index.delta_size(), 0u);
  EXPECT_EQ(index.tombstone_count(), 0u);
  EXPECT_EQ(index.size(), model.size());

  const auto queries = MakeQueries(base, 10, 2, Alphabet::Latin(), rng);
  ExpectMatchesOracle(index, model, *dist, queries, 5, "post-merge");

  // The merge output is complete files via temp + rename: both final names
  // exist, no *.tmp residue (what a crash mid-merge would have left — with
  // the previous snapshot still intact).
  EXPECT_TRUE(std::filesystem::exists(
      MutableLaesa::SnapshotStorePath(dir.path)));
  EXPECT_TRUE(std::filesystem::exists(
      MutableLaesa::SnapshotIndexPath(dir.path)));
  EXPECT_FALSE(std::filesystem::exists(
      MutableLaesa::SnapshotStorePath(dir.path) + ".tmp"));
  EXPECT_FALSE(std::filesystem::exists(
      MutableLaesa::SnapshotIndexPath(dir.path) + ".tmp"));

  // A snapshot instance serves the compacted world mapped zero-copy; its
  // fresh ids are positions in ascending old-id order.
  MutableLaesa mapped = MutableLaesa::FromSnapshot(dir.path, dist);
  EXPECT_EQ(mapped.size(), model.size());
  std::vector<std::uint64_t> old_ids;
  for (const auto& [id, s] : model.live()) old_ids.push_back(id);
  for (const std::string& q : queries) {
    const auto got = mapped.KNearest(q, 5);
    const auto want = model.KNearest(*dist, q, 5);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].distance, want[i].distance) << q << " rank " << i;
      // Fresh ids are positions in ascending-old-id order: the string
      // behind each hit must be the live string it maps to.
      ASSERT_LT(got[i].index, old_ids.size());
      EXPECT_EQ(mapped.GetString(got[i].index),
                model.live().at(old_ids[got[i].index]))
          << q << " rank " << i;
    }
  }

  // Tombstone masking must work against the *mapped* base too: the mask
  // pass writes +inf into the dequantized lower-bound slab, never into the
  // file-backed table.
  Model mapped_model;
  for (std::size_t i = 0; i < old_ids.size(); ++i) {
    mapped_model.Insert(i, model.live().at(old_ids[i]));
  }
  for (const std::uint64_t id : {std::uint64_t{0}, std::uint64_t{9},
                                 std::uint64_t{old_ids.size() - 1}}) {
    ASSERT_TRUE(mapped.Remove(id));
    mapped_model.Remove(id);
  }
  ExpectMatchesOracle(mapped, mapped_model, *dist, queries, 5,
                      "masked mapped");
  // The snapshot on disk is untouched by the in-memory tombstones.
  MutableLaesa remapped = MutableLaesa::FromSnapshot(dir.path, dist);
  EXPECT_EQ(remapped.size(), old_ids.size());
}

TEST(MutableLaesaTest, MergedIndexIsBitIdenticalToFromScratchBuild) {
  const auto base = Words(110, 71009);
  auto dist = MakeDistance("dE");
  MutableLaesa index(base, dist);
  Model model = ModelFromBase(base);

  Rng rng(71010);
  for (int i = 0; i < 25; ++i) {
    const std::string s = base[rng.Index(base.size())] + "~" +
                          std::to_string(i);
    model.Insert(index.Insert(s), s);
  }
  for (const std::uint64_t id : {3ull, 7ull, 64ull, 112ull, 130ull}) {
    ASSERT_TRUE(index.Remove(id));
    model.Remove(id);
  }
  ASSERT_TRUE(index.MergeNow());

  // Rebuild from scratch over the live set in ascending-id order: the
  // merged index must agree bit for bit — neighbours, distances AND stats
  // (the merge writes live entries in exactly that order, so both indexes
  // see the same store and pick the same pivots).
  std::vector<std::string> live_strings;
  std::vector<std::uint64_t> old_ids;
  for (const auto& [id, s] : model.live()) {
    old_ids.push_back(id);
    live_strings.push_back(s);
  }
  MutableLaesa fresh(live_strings, dist);

  const auto queries = MakeQueries(base, 12, 2, Alphabet::Latin(), rng);
  for (const std::string& q : queries) {
    QueryStats sm, sf;
    const auto rm = index.KNearest(q, 5, &sm);
    const auto rf = fresh.KNearest(q, 5, &sf);
    ASSERT_EQ(rm.size(), rf.size()) << q;
    for (std::size_t i = 0; i < rm.size(); ++i) {
      // fresh ids are positions; merged ids are the surviving stable ids.
      EXPECT_EQ(rm[i].index, old_ids[rf[i].index]) << q << " rank " << i;
      EXPECT_EQ(rm[i].distance, rf[i].distance) << q << " rank " << i;
    }
    EXPECT_TRUE(sm == sf) << q << ": merged vs from-scratch stats diverged";
  }
}

TEST(MutableLaesaTest, BackgroundMergeServesEveryQueryDuringSwap) {
  const auto base = Words(150, 71011);
  auto dist = MakeDistance("dE");
  MutableLaesa index(base, dist);
  Model model = ModelFromBase(base);

  Rng rng(71012);
  for (int i = 0; i < 30; ++i) {
    const std::string s = base[rng.Index(base.size())] + "#" +
                          std::to_string(i);
    model.Insert(index.Insert(s), s);
  }
  for (int i = 0; i < 20; ++i) {
    auto it = model.live().begin();
    std::advance(it, rng.Index(model.size()));
    ASSERT_TRUE(index.Remove(it->first));
    model.Remove(it->first);
  }

  // The live set is now frozen; precompute the exact answers, then hammer
  // the index from reader threads across the whole background merge. Every
  // single query — before, during, and after the epoch swap — must return
  // exactly the oracle answer: zero failed or degraded queries.
  const auto queries = MakeQueries(base, 15, 2, Alphabet::Latin(), rng);
  std::vector<std::vector<NeighborResult>> expected;
  for (const auto& q : queries) expected.push_back(model.KNearest(*dist, q, 4));
  std::vector<bool> is_live(index.next_id(), false);
  for (const auto& [id, s] : model.live()) is_live[id] = true;

  const std::uint64_t epoch_before = index.epoch();
  std::atomic<bool> done{false};
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> served{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::size_t i = t;
      while (!done.load(std::memory_order_relaxed)) {
        const auto& q = queries[i % queries.size()];
        const auto& want = expected[i % queries.size()];
        try {
          const auto got = index.KNearest(q, 4);
          if (got.size() != want.size()) {
            failures.fetch_add(1);
          } else {
            // The merge swap renumbers nothing and drops nothing: every
            // answer has the exact oracle distance profile and only live
            // ids, whichever epoch the reader pinned. (Tie winners may
            // legitimately differ across the swap; distances cannot.)
            for (std::size_t r = 0; r < got.size(); ++r) {
              if (got[r].distance != want[r].distance ||
                  got[r].index >= is_live.size() || !is_live[got[r].index]) {
                failures.fetch_add(1);
                break;
              }
            }
          }
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
        served.fetch_add(1);
        ++i;
      }
    });
  }
  ASSERT_TRUE(index.StartMerge());
  index.WaitMerge();
  done.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u)
      << "of " << served.load() << " queries served across the merge";
  EXPECT_GT(served.load(), 0u);
  EXPECT_GT(index.epoch(), epoch_before);
  EXPECT_EQ(index.delta_size(), 0u);
  EXPECT_EQ(index.tombstone_count(), 0u);
  ExpectMatchesOracle(index, model, *dist, queries, 4, "after merge");
}

// --- Concurrent mutate-while-search (the TSan job's stress) ---------------

TEST(MutableLaesaStressTest, ConcurrentMutatorsAndReadersAreSafe) {
  const auto base = Words(80, 71013);
  auto dist = MakeDistance("dE");
  MutableLaesa index(base, dist);
  Rng qrng(71014);
  const auto queries = MakeQueries(base, 10, 2, Alphabet::Latin(), qrng);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      std::size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto knn = index.KNearest(queries[i % queries.size()], 3);
        // The pinned-epoch guarantees that must hold under any interleaving
        // with the writer: results sorted by the global order, no duplicate
        // ids, every id one the index has actually assigned.
        for (std::size_t r = 0; r < knn.size(); ++r) {
          if (r > 0 && !NeighborLess(knn[r - 1], knn[r])) bad.fetch_add(1);
          if (knn[r].index >= index.next_id()) bad.fetch_add(1);
        }
        ++i;
      }
    });
  }

  Rng wrng(71015);
  for (int i = 0; i < 240; ++i) {
    if (i % 3 == 0 && index.size() > 40) {
      // Random removals racing the readers (misses are fine — the victim
      // may already be gone).
      index.Remove(wrng.Index(static_cast<std::size_t>(index.next_id())));
    } else {
      index.Insert(base[wrng.Index(base.size())] + "*" + std::to_string(i));
    }
    if (i % 60 == 59) index.MergeNow();
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0u);
}

// --- Batch engine + classification over the mutable tier ------------------

TEST(MutableLaesaTest, BatchEngineGenericPathMatchesSequential) {
  const auto base = Words(90, 71016);
  auto dist = MakeDistance("dE");
  MutableLaesa index(base, dist);
  Rng rng(71017);
  for (int i = 0; i < 15; ++i) {
    index.Insert(base[rng.Index(base.size())] + "!" + std::to_string(i));
  }
  for (const std::uint64_t id : {2ull, 30ull, 95ull}) {
    ASSERT_TRUE(index.Remove(id));
  }

  const auto queries = MakeQueries(base, 20, 2, Alphabet::Latin(), rng);
  QueryStats seq_stats;
  std::vector<NeighborResult> seq;
  for (const auto& q : queries) seq.push_back(index.Nearest(q, &seq_stats));

  BatchQueryEngine engine(index);
  QueryStats batch_stats;
  const auto batch = engine.Nearest(PrototypeStoreRef(queries), &batch_stats);
  ASSERT_EQ(batch.size(), seq.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].index, seq[i].index) << i;
    EXPECT_EQ(batch[i].distance, seq[i].distance) << i;
  }
  EXPECT_TRUE(batch_stats == seq_stats);
}

TEST(MutableLaesaTest, ClassifyUsesStableIdLabels) {
  const auto base = Words(60, 71018);
  auto dist = MakeDistance("dE");
  MutableLaesa index(base, dist);
  const std::uint64_t extra = index.Insert("zzz-unique-prototype");

  std::vector<int> labels(index.next_id());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 3);
  }
  const auto nn = index.Nearest("zzz-unique-prototype");
  EXPECT_EQ(nn.index, static_cast<std::size_t>(extra));
  EXPECT_EQ(index.Classify("zzz-unique-prototype", labels),
            labels[static_cast<std::size_t>(extra)]);
  // A label table that does not cover the nearest stable id is an error,
  // not an out-of-bounds read.
  EXPECT_THROW(index.Classify("zzz-unique-prototype", {}),
               std::invalid_argument);
}

// --- Edge cases -----------------------------------------------------------

TEST(MutableLaesaTest, EmptyAndExhaustedIndexBehave) {
  auto dist = MakeDistance("dE");
  MutableLaesa empty(dist);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.KNearest("q", 3).empty());
  EXPECT_THROW(empty.Nearest("q"), std::out_of_range);
  EXPECT_FALSE(empty.Remove(0));
  EXPECT_FALSE(empty.MergeNow());  // nothing to merge

  MutableLaesa index(std::vector<std::string>{"aa", "ab", "ba"}, dist);
  EXPECT_TRUE(index.Contains(1));
  EXPECT_EQ(index.GetString(1), "ab");
  ASSERT_TRUE(index.Remove(1));
  EXPECT_FALSE(index.Remove(1));  // double remove
  EXPECT_FALSE(index.Contains(1));
  EXPECT_THROW(index.GetString(1), std::out_of_range);
  EXPECT_FALSE(index.Remove(99));  // unknown id

  // Remove everything: queries return nothing rather than a dead entry.
  ASSERT_TRUE(index.Remove(0));
  ASSERT_TRUE(index.Remove(2));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.KNearest("aa", 2).empty());
  EXPECT_THROW(index.Nearest("aa"), std::out_of_range);

  // Ids are never reused: a fresh insert continues the sequence and the
  // index serves again.
  const std::uint64_t id = index.Insert("ca");
  EXPECT_EQ(id, 3u);
  EXPECT_EQ(index.Nearest("ca").index, static_cast<std::size_t>(id));
  // k beyond the live count clamps to what exists.
  EXPECT_EQ(index.KNearest("ca", 100).size(), 1u);
}

}  // namespace
}  // namespace cned
