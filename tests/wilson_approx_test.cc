// Tests for Wilson editing (ENN) and the approximate LAESA relaxation.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "search/condensing.h"
#include "search/exhaustive.h"
#include "search/laesa.h"

namespace cned {
namespace {

TEST(WilsonEditTest, RemovesIsolatedMislabeledSample) {
  // A 'z...' string labelled as class 0 sits inside class-1 territory: its
  // neighbours all vote 1, so Wilson editing must drop it.
  std::vector<std::string> samples{"aaaa", "aaab", "aaba", "zzzz",
                                   "zzzy", "zzyz", "zzab"};
  std::vector<int> labels{0, 0, 0, 1, 1, 1, /*mislabeled:*/ 1};
  // "zzab" is closer to the a-cluster? dE(zzab, aaab)=2, dE(zzab, zzzy)=2 —
  // keep it simple: instead plant "aabb" with label 1 inside class 0.
  samples.back() = "aabb";
  auto kept = WilsonEdit(samples, labels, *MakeDistance("dE"), 3);
  for (std::size_t idx : kept) {
    EXPECT_NE(samples[idx], "aabb");  // the planted noise must be gone
  }
  EXPECT_EQ(kept.size(), samples.size() - 1);
}

TEST(WilsonEditTest, CleanSeparableDataKeptIntact) {
  std::vector<std::string> samples{"aaaa", "aaab", "aaba", "abaa",
                                   "zzzz", "zzzy", "zzyz", "zyzz"};
  std::vector<int> labels{0, 0, 0, 0, 1, 1, 1, 1};
  auto kept = WilsonEdit(samples, labels, *MakeDistance("dE"), 3);
  EXPECT_EQ(kept.size(), samples.size());
}

TEST(WilsonEditTest, EdgeCasesAndValidation) {
  auto dist = MakeDistance("dE");
  std::vector<std::string> one{"solo"};
  std::vector<int> one_label{0};
  EXPECT_EQ(WilsonEdit(one, one_label, *dist).size(), 1u);
  std::vector<std::string> empty;
  std::vector<int> no_labels;
  EXPECT_TRUE(WilsonEdit(empty, no_labels, *dist).empty());
  EXPECT_THROW(WilsonEdit(one, no_labels, *dist), std::invalid_argument);
  EXPECT_THROW(WilsonEdit(one, one_label, *dist, 0), std::invalid_argument);
}

TEST(WilsonEditTest, ComposesWithCondensing) {
  // ENN then CNN: the classic pipeline. The result must stay 1-NN
  // consistent with the edited (not original) set.
  std::vector<std::string> samples{"aaaa", "aaab", "aaba", "abaa", "aabb",
                                   "zzzz", "zzzy", "zzyz", "zyzz"};
  std::vector<int> labels{0, 0, 0, 0, /*noise:*/ 1, 1, 1, 1, 1};
  auto dist = MakeDistance("dE");
  auto edited = WilsonEdit(samples, labels, *dist, 3);
  std::vector<std::string> es;
  std::vector<int> el;
  for (std::size_t idx : edited) {
    es.push_back(samples[idx]);
    el.push_back(labels[idx]);
  }
  CondensedSet sub = Condense(es, el, *dist);
  EXPECT_LE(sub.strings.size(), es.size());
  EXPECT_GE(sub.strings.size(), 2u);
}

std::vector<std::string> Dict(std::size_t n, std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = n;
  opt.seed = seed;
  return GenerateDictionary(opt).strings;
}

TEST(LaesaApproxTest, EpsilonZeroIsExact) {
  auto protos = Dict(200, 1901);
  Rng rng(1902);
  auto queries = MakeQueries(protos, 30, 2, Alphabet::Latin(), rng);
  Laesa laesa(protos, MakeDistance("dE"), 15);
  for (const auto& q : queries) {
    EXPECT_DOUBLE_EQ(laesa.NearestApprox(q, 0.0).distance,
                     laesa.Nearest(q).distance);
  }
}

TEST(LaesaApproxTest, GuaranteeHolds) {
  auto protos = Dict(300, 1903);
  Rng rng(1904);
  auto queries = MakeQueries(protos, 40, 2, Alphabet::Latin(), rng);
  auto dist = MakeDistance("dE");
  Laesa laesa(protos, dist, 20);
  ExhaustiveSearch exact(protos, dist);
  for (double eps : {0.25, 1.0}) {
    for (const auto& q : queries) {
      double approx = laesa.NearestApprox(q, eps).distance;
      double truth = exact.Nearest(q).distance;
      EXPECT_LE(approx, (1.0 + eps) * truth + 1e-9)
          << "q=" << q << " eps=" << eps;
      EXPECT_GE(approx + 1e-12, truth);
    }
  }
}

TEST(LaesaApproxTest, LargerEpsilonFewerComputationsOnContinuousMetrics) {
  // The relaxation pays off on continuous-valued distances, where a
  // slightly stale incumbent still eliminates well (measured: dYB needs
  // ~6x fewer computations at eps=1). On the integer-valued dE the
  // thresholds quantise and the effect can even reverse — see the doc
  // comment on NearestApprox.
  auto protos = Dict(600, 1905);
  Rng rng(1906);
  auto queries = MakeQueries(protos, 50, 2, Alphabet::Latin(), rng);
  for (const char* name : {"dYB", "dC,h"}) {
    Laesa laesa(protos, MakeDistance(name), 40);
    Laesa::QueryStats exact_stats, approx_stats;
    for (const auto& q : queries) {
      laesa.NearestApprox(q, 0.0, &exact_stats);
      laesa.NearestApprox(q, 1.0, &approx_stats);
    }
    EXPECT_LT(approx_stats.distance_computations,
              exact_stats.distance_computations)
        << name;
  }
}

TEST(LaesaApproxTest, RejectsNegativeEpsilon) {
  auto protos = Dict(20, 1907);
  Laesa laesa(protos, MakeDistance("dE"), 4);
  EXPECT_THROW(laesa.NearestApprox("abc", -0.5), std::invalid_argument);
}

}  // namespace
}  // namespace cned
