#include "distances/levenshtein.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(LevenshteinTest, PaperExample1) {
  // dE(abaa, aab) = 2: delete the 'b', substitute the last 'a' by 'b'.
  EXPECT_EQ(LevenshteinDistance("abaa", "aab"), 2u);
}

TEST(LevenshteinTest, PaperExample2UpperBound) {
  // The paper exhibits a 3-operation path abaa -> baab.
  EXPECT_LE(LevenshteinDistance("abaa", "baab"), 3u);
  EXPECT_EQ(LevenshteinDistance("abaa", "baab"), 2u);  // actually 2
}

TEST(LevenshteinTest, ClassicValues) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(LevenshteinTest, SymmetryOnRandomStrings) {
  Rng rng(5);
  Alphabet ab("abc");
  for (int i = 0; i < 200; ++i) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 12);
    std::string y = StringGen::UniformLength(rng, ab, 0, 12);
    EXPECT_EQ(LevenshteinDistance(x, y), LevenshteinDistance(y, x));
  }
}

TEST(LevenshteinTest, LengthDifferenceLowerBound) {
  Rng rng(6);
  Alphabet ab("ab");
  for (int i = 0; i < 200; ++i) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 15);
    std::string y = StringGen::UniformLength(rng, ab, 0, 15);
    std::size_t d = LevenshteinDistance(x, y);
    std::size_t diff = x.size() > y.size() ? x.size() - y.size()
                                           : y.size() - x.size();
    EXPECT_GE(d, diff);
    EXPECT_LE(d, std::max(x.size(), y.size()));
  }
}

TEST(LevenshteinTest, MatrixMatchesScalar) {
  Rng rng(7);
  Alphabet ab("abc");
  for (int i = 0; i < 50; ++i) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 10);
    std::string y = StringGen::UniformLength(rng, ab, 0, 10);
    auto m = LevenshteinMatrix(x, y);
    ASSERT_EQ(m.size(), x.size() + 1);
    ASSERT_EQ(m[0].size(), y.size() + 1);
    EXPECT_EQ(m[x.size()][y.size()], LevenshteinDistance(x, y));
    // Every prefix cell is itself an edit distance.
    for (std::size_t a = 0; a <= x.size(); ++a) {
      for (std::size_t b = 0; b <= y.size(); ++b) {
        EXPECT_EQ(m[a][b],
                  LevenshteinDistance(x.substr(0, a), y.substr(0, b)));
      }
    }
  }
}

TEST(LevenshteinTest, BoundedAgreesWhenWithinBound) {
  Rng rng(8);
  Alphabet ab("abcd");
  for (int i = 0; i < 300; ++i) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 14);
    std::string y = StringGen::UniformLength(rng, ab, 0, 14);
    std::size_t exact = LevenshteinDistance(x, y);
    for (std::size_t bound : {0u, 1u, 2u, 5u, 20u}) {
      std::size_t b = BoundedLevenshtein(x, y, bound);
      if (exact <= bound) {
        EXPECT_EQ(b, exact) << "x=" << x << " y=" << y << " bound=" << bound;
      } else {
        EXPECT_GT(b, bound) << "x=" << x << " y=" << y << " bound=" << bound;
      }
    }
  }
}

TEST(LevenshteinTest, TriangleInequalityOnRandomTriples) {
  Rng rng(9);
  Alphabet ab("ab");
  for (int i = 0; i < 300; ++i) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 10);
    std::string y = StringGen::UniformLength(rng, ab, 0, 10);
    std::string z = StringGen::UniformLength(rng, ab, 0, 10);
    EXPECT_LE(LevenshteinDistance(x, z),
              LevenshteinDistance(x, y) + LevenshteinDistance(y, z));
  }
}

TEST(EditDistanceAdapterTest, NameAndMetricFlag) {
  EditDistance d;
  EXPECT_EQ(d.name(), "dE");
  EXPECT_TRUE(d.is_metric());
  EXPECT_DOUBLE_EQ(d.Distance("abaa", "aab"), 2.0);
}

}  // namespace
}  // namespace cned
