// Property tests for the paper's Theorem 1: d_C is a metric.
//
// The triangle inequality is checked with *exact rational arithmetic* over
// an exhaustively enumerated universe of short strings, so the verification
// is free of floating-point noise; longer strings are covered by randomised
// double-precision sweeps with a tolerance.

#include <gtest/gtest.h>

#include <map>

#include "common/rational.h"
#include "common/rng.h"
#include "core/contextual.h"
#include "core/contextual_heuristic.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(ContextualMetricTest, ExactTriangleInequalityExhaustive) {
  Alphabet ab("ab");
  auto universe = StringGen::Enumerate(ab, 3);  // 15 strings, 3375 triples
  const std::size_t n = universe.size();

  // Cache the exact pairwise distances.
  std::vector<std::vector<Rational>> d(n, std::vector<Rational>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d[i][j] = ContextualDistanceExact(universe[i], universe[j]);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    // Identity.
    EXPECT_EQ(d[i][i], Rational(0));
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        EXPECT_GT(d[i][j], Rational(0));
      }
      // Symmetry.
      EXPECT_EQ(d[i][j], d[j][i])
          << universe[i] << " / " << universe[j];
      for (std::size_t k = 0; k < n; ++k) {
        // Triangle, exactly.
        EXPECT_LE(d[i][k], d[i][j] + d[j][k])
            << "x=" << universe[i] << " y=" << universe[j]
            << " z=" << universe[k];
      }
    }
  }
}

TEST(ContextualMetricTest, TriangleInequalityRandomLongerStrings) {
  Rng rng(51);
  Alphabet ab("abcd");
  for (int t = 0; t < 400; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 12);
    std::string y = StringGen::UniformLength(rng, ab, 0, 12);
    std::string z = StringGen::UniformLength(rng, ab, 0, 12);
    double xz = ContextualDistance(x, z);
    double xy = ContextualDistance(x, y);
    double yz = ContextualDistance(y, z);
    EXPECT_LE(xz, xy + yz + 1e-9)
        << "x=" << x << " y=" << y << " z=" << z;
  }
}

TEST(ContextualMetricTest, TriangleOnStructuredTriples) {
  // Structured triples (prefix/suffix/perturbation relations) stress the
  // inequality harder than uniform strings.
  Rng rng(52);
  Alphabet ab("ab");
  for (int t = 0; t < 200; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 1, 10);
    std::string y = x.substr(0, rng.Index(x.size() + 1));  // prefix of x
    std::string z = y + StringGen::UniformLength(rng, ab, 0, 4);
    double xz = ContextualDistance(x, z);
    double xy = ContextualDistance(x, y);
    double yz = ContextualDistance(y, z);
    EXPECT_LE(xz, xy + yz + 1e-9)
        << "x=" << x << " y=" << y << " z=" << z;
  }
}

TEST(ContextualMetricTest, HeuristicViolationsAreTinyWhenPresent) {
  // d_C,h is not guaranteed to be a metric. Quantify how badly random
  // triples can violate the triangle inequality: because dC <= dC,h and
  // they agree on most pairs, any violation margin is bounded by the
  // heuristic's deviation from dC. We assert the margin stays small (< 0.2)
  // — the property the paper relies on when plugging dC,h into LAESA.
  Rng rng(53);
  Alphabet ab("abcd");
  double worst = 0.0;
  for (int t = 0; t < 300; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 10);
    std::string y = StringGen::UniformLength(rng, ab, 0, 10);
    std::string z = StringGen::UniformLength(rng, ab, 0, 10);
    double margin = ContextualHeuristicDistance(x, z) -
                    ContextualHeuristicDistance(x, y) -
                    ContextualHeuristicDistance(y, z);
    worst = std::max(worst, margin);
  }
  EXPECT_LT(worst, 0.2);
}

TEST(ContextualMetricTest, ExactDoubleAndRationalAgree) {
  Rng rng(54);
  Alphabet ab("abc");
  for (int t = 0; t < 100; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 8);
    std::string y = StringGen::UniformLength(rng, ab, 0, 8);
    EXPECT_NEAR(ContextualDistance(x, y),
                ContextualDistanceExact(x, y).ToDouble(), 1e-12);
  }
}

}  // namespace
}  // namespace cned
