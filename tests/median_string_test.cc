#include "metric/median_string.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/perturb.h"
#include "distances/registry.h"

namespace cned {
namespace {

TEST(SetMedianTest, ObviousCenter) {
  // "aaab" is within distance 1 of everything; the outlier is not.
  std::vector<std::string> sample{"aaaa", "aaab", "aabb", "zzzz"};
  auto dist = MakeDistance("dE");
  std::size_t median = SetMedianIndex(sample, *dist);
  EXPECT_NE(sample[median], "zzzz");
}

TEST(SetMedianTest, SingletonAndEmpty) {
  auto dist = MakeDistance("dE");
  std::vector<std::string> one{"solo"};
  EXPECT_EQ(SetMedianIndex(one, *dist), 0u);
  std::vector<std::string> empty;
  EXPECT_THROW(SetMedianIndex(empty, *dist), std::invalid_argument);
}

TEST(TotalDistanceTest, SumsAllDistances) {
  std::vector<std::string> sample{"a", "ab", "abc"};
  auto dist = MakeDistance("dE");
  // d("ab","a")=1, d("ab","ab")=0, d("ab","abc")=1.
  EXPECT_DOUBLE_EQ(TotalDistance("ab", sample, *dist), 2.0);
}

TEST(ApproximateMedianTest, ImprovesOnSetMedian) {
  // Perturbations of a hidden center: hill climbing should recover
  // something at least as central as the best sample element.
  Rng rng(901);
  Alphabet ab("abcd");
  std::string center = "abcdabcdab";
  std::vector<std::string> sample;
  for (int i = 0; i < 12; ++i) {
    sample.push_back(PerturbString(center, 2, ab, rng));
  }
  auto dist = MakeDistance("dE");
  double set_median_total =
      TotalDistance(sample[SetMedianIndex(sample, *dist)], sample, *dist);
  std::string median = ApproximateMedianString(sample, *dist, ab);
  double median_total = TotalDistance(median, sample, *dist);
  EXPECT_LE(median_total, set_median_total);
  // And it should be close to the hidden center.
  EXPECT_LE(dist->Distance(median, center), 3.0);
}

TEST(ApproximateMedianTest, WorksWithContextualDistance) {
  Rng rng(902);
  Alphabet ab("ab");
  std::string center = "ababab";
  std::vector<std::string> sample;
  for (int i = 0; i < 8; ++i) {
    sample.push_back(PerturbString(center, 1, ab, rng));
  }
  auto dist = MakeDistance("dC,h");
  std::string median = ApproximateMedianString(sample, *dist, ab, 4);
  double median_total = TotalDistance(median, sample, *dist);
  double center_total = TotalDistance(center, sample, *dist);
  // The climbed median should be competitive with the true generator.
  EXPECT_LE(median_total, center_total + 0.5);
}

TEST(ApproximateMedianTest, FixedPointOnIdenticalSamples) {
  std::vector<std::string> sample{"same", "same", "same"};
  auto dist = MakeDistance("dE");
  EXPECT_EQ(ApproximateMedianString(sample, *dist, Alphabet::Latin()), "same");
}

}  // namespace
}  // namespace cned
