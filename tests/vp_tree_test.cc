#include "search/vp_tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "search/exhaustive.h"

namespace cned {
namespace {

std::vector<std::string> Dict(std::size_t n, std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = n;
  opt.seed = seed;
  return GenerateDictionary(opt).strings;
}

TEST(VpTreeTest, ExactForMetricDistances) {
  auto protos = Dict(250, 501);
  Rng rng(502);
  auto queries = MakeQueries(protos, 60, 2, Alphabet::Latin(), rng);
  for (const char* name : {"dE", "dYB"}) {
    auto dist = MakeDistance(name);
    VpTree tree(protos, dist);
    ExhaustiveSearch exact(protos, dist);
    for (const auto& q : queries) {
      EXPECT_NEAR(tree.Nearest(q).distance, exact.Nearest(q).distance, 1e-9)
          << name << " query=" << q;
    }
  }
}

TEST(VpTreeTest, ExactForContextualMetric) {
  auto protos = Dict(100, 503);
  Rng rng(504);
  auto queries = MakeQueries(protos, 25, 2, Alphabet::Latin(), rng);
  auto dist = MakeDistance("dC");
  VpTree tree(protos, dist);
  ExhaustiveSearch exact(protos, dist);
  for (const auto& q : queries) {
    EXPECT_NEAR(tree.Nearest(q).distance, exact.Nearest(q).distance, 1e-9);
  }
}

TEST(VpTreeTest, PrunesDistanceComputations) {
  auto protos = Dict(600, 505);
  Rng rng(506);
  auto queries = MakeQueries(protos, 50, 2, Alphabet::Latin(), rng);
  VpTree tree(protos, MakeDistance("dE"));
  VpTree::QueryStats stats;
  for (const auto& q : queries) tree.Nearest(q, &stats);
  double avg = static_cast<double>(stats.distance_computations) /
               static_cast<double>(queries.size());
  EXPECT_LT(avg, static_cast<double>(protos.size()) * 0.8);
}

TEST(VpTreeTest, SingleAndDuplicatePrototypes) {
  std::vector<std::string> one{"solo"};
  VpTree t1(one, MakeDistance("dE"));
  EXPECT_EQ(t1.Nearest("sole").index, 0u);

  std::vector<std::string> dups{"aa", "aa", "bb", "aa"};
  VpTree t2(dups, MakeDistance("dE"));
  auto r = t2.Nearest("aa");
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  EXPECT_EQ(dups[r.index], "aa");
}

TEST(VpTreeTest, EmptySetThrows) {
  std::vector<std::string> empty;
  EXPECT_THROW(VpTree(empty, MakeDistance("dE")), std::invalid_argument);
}

TEST(VpTreeTest, PreprocessingCountReported) {
  auto protos = Dict(100, 507);
  VpTree tree(protos, MakeDistance("dE"));
  // Tree building computes ~n log n distances.
  EXPECT_GT(tree.preprocessing_computations(), protos.size());
  EXPECT_LT(tree.preprocessing_computations(),
            protos.size() * protos.size());
}

TEST(VpTreeTest, DeterministicPerSeed) {
  auto protos = Dict(80, 508);
  VpTree a(protos, MakeDistance("dE"), 9);
  VpTree b(protos, MakeDistance("dE"), 9);
  Rng rng(509);
  auto queries = MakeQueries(protos, 10, 2, Alphabet::Latin(), rng);
  for (const auto& q : queries) {
    EXPECT_EQ(a.Nearest(q).index, b.Nearest(q).index);
  }
}

}  // namespace
}  // namespace cned
