#include "metric/stats.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cned {
namespace {

TEST(RunningStatsTest, KnownSmallSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MatchesDirectComputationOnRandomData) {
  Rng rng(71);
  RunningStats s;
  std::vector<double> data;
  for (int i = 0; i < 5000; ++i) {
    double v = rng.Gaussian(10.0, 3.0);
    data.push_back(v);
    s.Add(v);
  }
  double mean = 0.0;
  for (double v : data) mean += v;
  mean /= static_cast<double>(data.size());
  double var = 0.0;
  for (double v : data) var += (v - mean) * (v - mean);
  var /= static_cast<double>(data.size());
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-7);
}

TEST(IntrinsicDimensionalityTest, ChavezFormula) {
  // rho = mu^2 / (2 sigma^2): mean 5, var 4 -> 25/8.
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(IntrinsicDimensionality(s), 25.0 / 8.0);
}

TEST(IntrinsicDimensionalityTest, VectorOverload) {
  std::vector<double> d{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(IntrinsicDimensionality(d), 25.0 / 8.0);
}

TEST(IntrinsicDimensionalityTest, ConcentratedHistogramHasHigherRho) {
  // The paper's rationale: more concentrated distance histograms (smaller
  // variance relative to the mean) => higher intrinsic dimension => harder
  // search.
  std::vector<double> concentrated, spread;
  Rng rng(72);
  for (int i = 0; i < 4000; ++i) {
    concentrated.push_back(rng.Gaussian(1.0, 0.05));
    spread.push_back(rng.Gaussian(1.0, 0.5));
  }
  EXPECT_GT(IntrinsicDimensionality(concentrated),
            IntrinsicDimensionality(spread));
}

TEST(IntrinsicDimensionalityTest, ZeroVarianceThrows) {
  std::vector<double> constant{1.0, 1.0, 1.0};
  EXPECT_THROW(IntrinsicDimensionality(constant), std::invalid_argument);
}

}  // namespace
}  // namespace cned
