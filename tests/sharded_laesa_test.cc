// ShardedLaesa contracts: the sharded execution is the *same* LAESA sweep
// as the flat single-store index — neighbours, distances and QueryStats
// must be bit-identical for every registered distance (metric or not) and
// every shard count — and the batch engine's two-stage pivot pipeline must
// be bit-identical to its sequential per-query reference
// (ComputePivotRow + *WithPivotRow).

#include "search/sharded_laesa.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "datasets/prototype_store.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/registry.h"
#include "search/batch_engine.h"
#include "search/exhaustive.h"
#include "search/laesa.h"

namespace cned {
namespace {

struct Workload {
  std::vector<std::string> protos;
  std::vector<std::string> queries;
};

Workload MakeWorkload(std::size_t words, std::size_t queries,
                      std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = words;
  opt.seed = seed;
  Workload w;
  w.protos = GenerateDictionary(opt).strings;
  Rng rng(seed + 1);
  w.queries = MakeQueries(w.protos, queries, 2, Alphabet::Latin(), rng);
  return w;
}

const std::size_t kShardCounts[] = {1, 2, 4, 8};

// Small sizes: the suite runs the cubic dC / dMV kernels too.
TEST(ShardedLaesaTest, BitIdenticalToFlatForEveryDistance) {
  Workload w = MakeWorkload(60, 15, 5100);
  PrototypeStore flat_store(w.protos);
  for (const auto& name : AllDistanceNames()) {
    auto dist = MakeDistance(name);
    Laesa flat(flat_store, dist, 8);
    for (std::size_t shards : kShardCounts) {
      ShardedPrototypeStore store(w.protos, shards);
      ShardedLaesa sharded(store, dist, 8);
      ASSERT_EQ(sharded.pivots(), flat.pivots()) << name << " S=" << shards;
      for (const auto& q : w.queries) {
        QueryStats fs, ss;
        const NeighborResult a = flat.Nearest(q, &fs);
        const NeighborResult b = sharded.Nearest(q, &ss);
        EXPECT_EQ(a.index, b.index) << name << " S=" << shards << " q=" << q;
        EXPECT_EQ(a.distance, b.distance) << name << " S=" << shards;
        EXPECT_TRUE(fs == ss)
            << name << " S=" << shards << " q=" << q << ": flat ("
            << fs.distance_computations << ", " << fs.bounded_abandons << ", "
            << fs.pivot_computations << ") != sharded ("
            << ss.distance_computations << ", " << ss.bounded_abandons << ", "
            << ss.pivot_computations << ")";

        QueryStats fk, sk;
        const auto ka = flat.KNearest(q, 5, &fk);
        const auto kb = sharded.KNearest(q, 5, &sk);
        ASSERT_EQ(ka.size(), kb.size()) << name << " S=" << shards;
        for (std::size_t i = 0; i < ka.size(); ++i) {
          EXPECT_EQ(ka[i].index, kb[i].index) << name << " S=" << shards;
          EXPECT_EQ(ka[i].distance, kb[i].distance) << name << " S=" << shards;
        }
        EXPECT_TRUE(fk == sk) << name << " S=" << shards;
      }
    }
  }
}

// The fig3 dictionary workload shape at a realistic size, on the cheap
// kernels (the acceptance check for the sharded refactor).
TEST(ShardedLaesaTest, Fig3DictionaryWorkloadIdentity) {
  Workload w = MakeWorkload(500, 80, 5200);
  PrototypeStore flat_store(w.protos);
  for (const char* name : {"dE", "dYB", "dmax"}) {
    auto dist = MakeDistance(name);
    for (std::size_t pivots : {10u, 40u}) {
      Laesa flat(flat_store, dist, pivots);
      for (std::size_t shards : kShardCounts) {
        ShardedPrototypeStore store(w.protos, shards);
        ShardedLaesa sharded(store, dist, pivots);
        QueryStats fs, ss;
        for (const auto& q : w.queries) {
          const NeighborResult a = flat.Nearest(q, &fs);
          const NeighborResult b = sharded.Nearest(q, &ss);
          ASSERT_EQ(a.index, b.index)
              << name << " pivots=" << pivots << " S=" << shards;
          ASSERT_EQ(a.distance, b.distance);
        }
        EXPECT_TRUE(fs == ss) << name << " pivots=" << pivots
                              << " S=" << shards;
      }
    }
  }
}

TEST(ShardedLaesaTest, WithPivotRowMatchesFlatWithPivotRow) {
  Workload w = MakeWorkload(60, 12, 5300);
  PrototypeStore flat_store(w.protos);
  for (const auto& name : AllDistanceNames()) {
    auto dist = MakeDistance(name);
    Laesa flat(flat_store, dist, 6);
    for (std::size_t shards : {2u, 4u}) {
      ShardedPrototypeStore store(w.protos, shards);
      ShardedLaesa sharded(store, dist, 6);
      std::vector<double> row_a(flat.pivot_count());
      std::vector<double> row_b(sharded.pivot_count());
      for (const auto& q : w.queries) {
        QueryStats fs, ss;
        flat.ComputePivotRow(q, row_a.data(), &fs);
        sharded.ComputePivotRow(q, row_b.data(), &ss);
        ASSERT_EQ(row_a, row_b) << name;
        const NeighborResult a = flat.NearestWithPivotRow(q, row_a.data(), &fs);
        const NeighborResult b =
            sharded.NearestWithPivotRow(q, row_b.data(), &ss);
        EXPECT_EQ(a.index, b.index) << name << " S=" << shards;
        EXPECT_EQ(a.distance, b.distance) << name << " S=" << shards;
        EXPECT_TRUE(fs == ss) << name << " S=" << shards;

        const auto ka = flat.KNearestWithPivotRow(q, 4, row_a.data());
        const auto kb = sharded.KNearestWithPivotRow(q, 4, row_b.data());
        ASSERT_EQ(ka.size(), kb.size()) << name;
        for (std::size_t i = 0; i < ka.size(); ++i) {
          EXPECT_EQ(ka[i].index, kb[i].index) << name;
          EXPECT_EQ(ka[i].distance, kb[i].distance) << name;
        }
      }
    }
  }
}

TEST(ShardedLaesaTest, KNearestDistancesMatchExhaustive) {
  Workload w = MakeWorkload(250, 25, 5400);
  auto dist = MakeDistance("dE");
  ShardedPrototypeStore store(w.protos, 4);
  ShardedLaesa sharded(store, dist, 20);
  ExhaustiveSearch exact(w.protos, dist);
  for (const auto& q : w.queries) {
    for (std::size_t k : {1u, 3u, 7u}) {
      auto a = sharded.KNearest(q, k);
      auto b = exact.KNearest(q, k);
      ASSERT_EQ(a.size(), b.size()) << q;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i].distance, b[i].distance, 1e-9)
            << "q=" << q << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST(ShardedLaesaTest, PerShardStatsSumToMergedStats) {
  Workload w = MakeWorkload(300, 30, 5500);
  auto dist = MakeDistance("dYB");
  ShardedPrototypeStore store(w.protos, 4);
  ShardedLaesa sharded(store, dist, 12);
  for (const auto& q : w.queries) {
    QueryStats merged;
    std::vector<QueryStats> per_shard(sharded.shard_count());
    (void)sharded.Nearest(q, &merged, per_shard.data());
    QueryStats sum;
    for (const QueryStats& s : per_shard) sum += s;
    EXPECT_TRUE(sum == merged) << q;
  }
}

TEST(ShardedLaesaTest, EnginePivotStageMatchesSequentialReference) {
  Workload w = MakeWorkload(200, 0, 5600);
  Rng rng(5601);
  // Distinct query strings: stage deduplication is a no-op, so the merged
  // engine stats must equal the sequential two-stage sums exactly.
  auto queries_vec = MakeQueries(w.protos, 25, 3, Alphabet::Latin(), rng);
  std::sort(queries_vec.begin(), queries_vec.end());
  queries_vec.erase(std::unique(queries_vec.begin(), queries_vec.end()),
                    queries_vec.end());
  PrototypeStore queries(queries_vec);
  for (const char* name : {"dE", "dYB"}) {
    auto dist = MakeDistance(name);
    ShardedPrototypeStore store(w.protos, 4);
    ShardedLaesa sharded(store, dist, 10);

    QueryStats seq_stats;
    std::vector<double> row(sharded.pivot_count());
    std::vector<NeighborResult> sequential(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      sharded.ComputePivotRow(queries[i], row.data(), &seq_stats);
      sequential[i] =
          sharded.NearestWithPivotRow(queries[i], row.data(), &seq_stats);
    }

    for (std::size_t threads : {std::size_t{0}, std::size_t{1},
                                std::size_t{3}}) {
      BatchQueryEngine::Options opt;
      opt.threads = threads;
      opt.pivot_stage = true;
      BatchQueryEngine engine(sharded, opt);
      QueryStats batch_stats;
      auto batched = engine.Nearest(queries, &batch_stats);
      ASSERT_EQ(batched.size(), sequential.size()) << name;
      for (std::size_t i = 0; i < batched.size(); ++i) {
        EXPECT_EQ(batched[i].index, sequential[i].index)
            << name << " threads=" << threads << " q=" << i;
        EXPECT_EQ(batched[i].distance, sequential[i].distance) << name;
      }
      EXPECT_TRUE(batch_stats == seq_stats)
          << name << " threads=" << threads << ": batched ("
          << batch_stats.distance_computations << ", "
          << batch_stats.bounded_abandons << ", "
          << batch_stats.pivot_computations << ") != sequential ("
          << seq_stats.distance_computations << ", "
          << seq_stats.bounded_abandons << ", "
          << seq_stats.pivot_computations << ")";
    }
  }
}

TEST(ShardedLaesaTest, EnginePivotStageDeduplicatesRepeatedQueries) {
  Workload w = MakeWorkload(150, 0, 5700);
  Rng rng(5701);
  auto unique = MakeQueries(w.protos, 6, 2, Alphabet::Latin(), rng);
  PrototypeStore queries;
  for (std::size_t i = 0; i < 30; ++i) queries.Add(unique[i % unique.size()]);

  auto dist = MakeDistance("dE");
  ShardedPrototypeStore store(w.protos, 2);
  ShardedLaesa sharded(store, dist, 8);

  BatchQueryEngine::Options opt;
  opt.pivot_stage = true;
  BatchQueryEngine engine(sharded, opt);
  QueryStats stats;
  auto results = engine.Nearest(queries, &stats);

  // The stage runs once per *unique* query string.
  EXPECT_EQ(stats.pivot_computations, unique.size() * sharded.pivot_count());

  // Results still match the per-query reference.
  std::vector<double> row(sharded.pivot_count());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    sharded.ComputePivotRow(queries[i], row.data());
    const NeighborResult expect =
        sharded.NearestWithPivotRow(queries[i], row.data());
    EXPECT_EQ(results[i].index, expect.index) << i;
    EXPECT_EQ(results[i].distance, expect.distance) << i;
  }
}

TEST(ShardedLaesaTest, EngineShardStatsMatchDirectCalls) {
  Workload w = MakeWorkload(200, 20, 5800);
  auto dist = MakeDistance("dE");
  ShardedPrototypeStore store(w.protos, 4);
  ShardedLaesa sharded(store, dist, 10);
  PrototypeStore queries(w.queries);

  std::vector<QueryStats> expected(sharded.shard_count());
  for (const auto& q : w.queries) {
    (void)sharded.Nearest(q, nullptr, expected.data());
  }

  BatchQueryEngine engine(sharded);
  QueryStats merged;
  std::vector<QueryStats> shard_stats;
  (void)engine.Nearest(queries, &merged, &shard_stats);
  ASSERT_EQ(shard_stats.size(), expected.size());
  for (std::size_t s = 0; s < expected.size(); ++s) {
    EXPECT_TRUE(shard_stats[s] == expected[s]) << "shard " << s;
  }

  Laesa flat(PrototypeStore(w.protos), dist, 10);
  BatchQueryEngine flat_engine(flat);
  std::vector<QueryStats> bad;
  EXPECT_THROW(flat_engine.Nearest(queries, nullptr, &bad),
               std::invalid_argument);
}

TEST(ShardedLaesaTest, ClassifyThroughEngineUsesGlobalLabels) {
  Workload w = MakeWorkload(120, 15, 5900);
  std::vector<int> labels(w.protos.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 5);
  }
  auto dist = MakeDistance("dYB");
  ShardedPrototypeStore store(w.protos, 3, labels);
  ShardedLaesa sharded(store, dist, 8);
  PrototypeStore queries(w.queries);

  std::vector<int> expected(w.queries.size());
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    expected[i] = labels[sharded.Nearest(w.queries[i]).index];
  }
  BatchQueryEngine engine(sharded);
  EXPECT_EQ(engine.Classify(queries, store.labels()), expected);
}

TEST(ShardedLaesaTest, NearestApproxAcceptsSlackAndRejectsNegative) {
  Workload w = MakeWorkload(100, 10, 6000);
  auto dist = MakeDistance("dYB");
  ShardedPrototypeStore store(w.protos, 4);
  ShardedLaesa sharded(store, dist, 8);
  ExhaustiveSearch exact(w.protos, dist);
  for (const auto& q : w.queries) {
    const NeighborResult approx = sharded.NearestApprox(q, 1.0);
    const NeighborResult truth = exact.Nearest(q);
    EXPECT_LE(truth.distance, approx.distance * (1.0 + 1e-12));
  }
  EXPECT_THROW(sharded.NearestApprox("abc", -0.1), std::invalid_argument);
}

TEST(ShardedLaesaTest, RejectsEmptyStoreAndZeroPivots) {
  ShardedPrototypeStore empty(std::vector<std::string>{}, 2);
  EXPECT_THROW(ShardedLaesa(empty, MakeDistance("dE"), 4),
               std::invalid_argument);
  ShardedPrototypeStore tiny(std::vector<std::string>{"ab", "cd"}, 2);
  EXPECT_THROW(ShardedLaesa(tiny, MakeDistance("dE"), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cned
