#include "metric/metric_validator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/contextual.h"
#include "distances/levenshtein.h"
#include "distances/normalized.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(MetricValidatorTest, FindsPaperCounterexampleForDsum) {
  SumNormalizedDistance dsum;
  std::vector<std::string> sample{"ab", "aba", "ba"};
  auto v = FindTriangleViolation(dsum, sample);
  ASSERT_TRUE(v.has_value());
  EXPECT_GT(v->margin, 0.0);
  // The witness must be the paper's triple (in some order).
  EXPECT_EQ(v->y, "aba");  // the middle string of the broken triangle
}

TEST(MetricValidatorTest, FindsViolationsForDmaxAndDmin) {
  MaxNormalizedDistance dmax;
  MinNormalizedDistance dmin;
  std::vector<std::string> s1{"ab", "aba", "ba"};
  EXPECT_TRUE(FindTriangleViolation(dmax, s1).has_value());
  std::vector<std::string> s2{"b", "ba", "aa"};
  EXPECT_TRUE(FindTriangleViolation(dmin, s2).has_value());
}

TEST(MetricValidatorTest, EditDistancePassesOnRandomSample) {
  EditDistance de;
  Rng rng(81);
  Alphabet ab("ab");
  auto sample = StringGen::Batch(rng, ab, 25, 0, 8);
  EXPECT_FALSE(FindTriangleViolation(de, sample).has_value());
  EXPECT_EQ(CheckIdentityAndSymmetry(de, sample), "");
}

TEST(MetricValidatorTest, YujianBoPassesOnRandomSample) {
  YujianBoDistance dyb;
  Rng rng(82);
  Alphabet ab("abc");
  auto sample = StringGen::Batch(rng, ab, 25, 0, 8);
  EXPECT_FALSE(FindTriangleViolation(dyb, sample).has_value());
}

TEST(MetricValidatorTest, ContextualPassesOnRandomSample) {
  ContextualEditDistance dc;
  Rng rng(83);
  Alphabet ab("ab");
  auto sample = StringGen::Batch(rng, ab, 20, 0, 7);
  EXPECT_FALSE(FindTriangleViolation(dc, sample, 1e-9).has_value());
  EXPECT_EQ(CheckIdentityAndSymmetry(dc, sample), "");
}

TEST(MetricValidatorTest, IdentityCheckCatchesDuplicateDistanceZero) {
  // A degenerate "distance" that maps everything to 0 must be flagged.
  class Zero final : public StringDistance {
   public:
    double Distance(std::string_view, std::string_view) const override {
      return 0.0;
    }
    std::string name() const override { return "zero"; }
    bool is_metric() const override { return false; }
  };
  Zero z;
  std::vector<std::string> sample{"a", "b"};
  EXPECT_NE(CheckIdentityAndSymmetry(z, sample), "");
}

TEST(MetricValidatorTest, ReturnsWorstViolation) {
  SumNormalizedDistance dsum;
  // Add irrelevant strings; the validator must still locate the violation
  // and report the largest margin.
  std::vector<std::string> sample{"ab", "aba", "ba", "aaaa", "abab"};
  auto v = FindTriangleViolation(dsum, sample);
  ASSERT_TRUE(v.has_value());
  double margin_check =
      dsum.Distance(v->x, v->z) -
      (dsum.Distance(v->x, v->y) + dsum.Distance(v->y, v->z));
  EXPECT_NEAR(v->margin, margin_check, 1e-12);
}

}  // namespace
}  // namespace cned
