// Tests for the LAESA extensions beyond the paper's 1-NN search:
// k-nearest-neighbour queries, range queries and index serialisation.

#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "search/exhaustive.h"
#include "search/laesa.h"

namespace cned {
namespace {

std::vector<std::string> Dict(std::size_t n, std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = n;
  opt.seed = seed;
  return GenerateDictionary(opt).strings;
}

TEST(LaesaKNearestTest, MatchesExhaustiveKNN) {
  auto protos = Dict(250, 701);
  Rng rng(702);
  auto queries = MakeQueries(protos, 30, 2, Alphabet::Latin(), rng);
  auto dist = MakeDistance("dE");
  Laesa laesa(protos, dist, 20);
  ExhaustiveSearch exact(protos, dist);
  for (const auto& q : queries) {
    for (std::size_t k : {1u, 3u, 7u}) {
      auto a = laesa.KNearest(q, k);
      auto b = exact.KNearest(q, k);
      ASSERT_EQ(a.size(), b.size()) << q;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i].distance, b[i].distance, 1e-9)
            << "q=" << q << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST(LaesaKNearestTest, SortedAndSavesComputations) {
  auto protos = Dict(500, 703);
  Rng rng(704);
  auto queries = MakeQueries(protos, 30, 2, Alphabet::Latin(), rng);
  Laesa laesa(protos, MakeDistance("dE"), 40);
  Laesa::QueryStats stats;
  for (const auto& q : queries) {
    auto r = laesa.KNearest(q, 5, &stats);
    ASSERT_EQ(r.size(), 5u);
    for (std::size_t i = 1; i < r.size(); ++i) {
      EXPECT_LE(r[i - 1].distance, r[i].distance);
    }
  }
  EXPECT_LT(stats.distance_computations,
            static_cast<std::uint64_t>(protos.size()) * queries.size());
}

TEST(LaesaKNearestTest, KLargerThanSetClamps) {
  auto protos = Dict(10, 705);
  Laesa laesa(protos, MakeDistance("dE"), 3);
  EXPECT_EQ(laesa.KNearest("zzz", 50).size(), protos.size());
}

TEST(LaesaRangeSearchTest, MatchesBruteForce) {
  auto protos = Dict(200, 706);
  Rng rng(707);
  auto queries = MakeQueries(protos, 25, 2, Alphabet::Latin(), rng);
  auto dist = MakeDistance("dE");
  Laesa laesa(protos, dist, 15);
  for (const auto& q : queries) {
    for (double radius : {0.0, 1.0, 2.5}) {
      auto hits = laesa.RangeSearch(q, radius);
      std::size_t expected = 0;
      for (const auto& p : protos) {
        if (dist->Distance(q, p) <= radius) ++expected;
      }
      EXPECT_EQ(hits.size(), expected) << "q=" << q << " r=" << radius;
      for (std::size_t i = 1; i < hits.size(); ++i) {
        EXPECT_LE(hits[i - 1].distance, hits[i].distance);
      }
    }
  }
}

TEST(LaesaRangeSearchTest, WorksWithContextualMetric) {
  auto protos = Dict(120, 708);
  auto dist = MakeDistance("dC");
  Laesa laesa(protos, dist, 10);
  auto hits = laesa.RangeSearch(protos[5], 0.35);
  // The query itself is a prototype: must be reported at distance 0.
  ASSERT_FALSE(hits.empty());
  EXPECT_DOUBLE_EQ(hits[0].distance, 0.0);
  for (const auto& h : hits) {
    EXPECT_LE(h.distance, 0.35);
    EXPECT_NEAR(dist->Distance(protos[5], protos[h.index]), h.distance, 1e-12);
  }
}

TEST(LaesaSerializationTest, SaveLoadRoundtrip) {
  auto protos = Dict(150, 709);
  auto dist = MakeDistance("dE");
  Laesa original(protos, dist, 12);
  std::stringstream buffer;
  original.Save(buffer);

  Laesa restored = Laesa::Load(buffer, protos, dist);
  EXPECT_EQ(restored.num_pivots(), original.num_pivots());
  EXPECT_EQ(restored.pivots(), original.pivots());

  Rng rng(710);
  auto queries = MakeQueries(protos, 20, 2, Alphabet::Latin(), rng);
  for (const auto& q : queries) {
    auto a = original.Nearest(q);
    auto b = restored.Nearest(q);
    EXPECT_EQ(a.index, b.index) << q;
    EXPECT_DOUBLE_EQ(a.distance, b.distance);
  }
}

TEST(LaesaSerializationTest, LoadValidatesInput) {
  auto protos = Dict(20, 711);
  auto dist = MakeDistance("dE");
  {
    std::stringstream bad("GARBAGE 9");
    EXPECT_THROW(Laesa::Load(bad, protos, dist), std::runtime_error);
  }
  {
    Laesa original(protos, dist, 4);
    std::stringstream buffer;
    original.Save(buffer);
    auto fewer = std::vector<std::string>(protos.begin(), protos.end() - 1);
    EXPECT_THROW(Laesa::Load(buffer, fewer, dist), std::runtime_error);
  }
  {
    std::stringstream truncated("LAESA 1\n20 4\n0 1 2 3\n0.5");
    EXPECT_THROW(Laesa::Load(truncated, protos, dist), std::runtime_error);
  }
}

}  // namespace
}  // namespace cned
