// Determinism contract of the BatchQueryEngine: for every registered
// distance, batched Nearest / KNearest / Classify must return bit-identical
// results to the sequential per-query loop, and the merged QueryStats must
// equal the sequential sums — regardless of thread count or schedule.

#include "search/batch_engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "datasets/prototype_store.h"
#include "distances/registry.h"
#include "search/aesa.h"
#include "search/bk_tree.h"
#include "search/exhaustive.h"
#include "search/knn_classifier.h"
#include "search/laesa.h"

namespace cned {
namespace {

struct Workload {
  PrototypeStore protos;
  PrototypeStore queries;
};

// Small sizes: the suite runs the cubic dC / dMV kernels too.
Workload MakeWorkload(std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = 50;
  opt.seed = seed;
  auto strings = GenerateDictionary(opt).strings;
  Rng rng(seed + 1);
  auto query_strings = MakeQueries(strings, 12, 2, Alphabet::Latin(), rng);
  return {PrototypeStore(strings), PrototypeStore(query_strings)};
}

TEST(BatchEngineTest, BitIdenticalToSequentialForEveryDistance) {
  Workload w = MakeWorkload(4100);
  for (const auto& name : AllDistanceNames()) {
    auto dist = MakeDistance(name);
    Laesa laesa(w.protos, dist, 8);

    QueryStats seq_stats;
    std::vector<NeighborResult> sequential(w.queries.size());
    for (std::size_t i = 0; i < w.queries.size(); ++i) {
      sequential[i] = laesa.Nearest(w.queries[i], &seq_stats);
    }

    for (std::size_t threads : {std::size_t{0}, std::size_t{1},
                                std::size_t{3}}) {
      QueryStats batch_stats;
      BatchQueryEngine engine(laesa, {threads});
      auto batched = engine.Nearest(w.queries, &batch_stats);
      ASSERT_EQ(batched.size(), sequential.size()) << name;
      for (std::size_t i = 0; i < batched.size(); ++i) {
        EXPECT_EQ(batched[i].index, sequential[i].index)
            << name << " threads=" << threads << " q=" << i;
        // Bit-identical, not approximately equal.
        EXPECT_EQ(batched[i].distance, sequential[i].distance)
            << name << " threads=" << threads << " q=" << i;
      }
      EXPECT_TRUE(batch_stats == seq_stats)
          << name << " threads=" << threads << ": batched stats ("
          << batch_stats.distance_computations << ", "
          << batch_stats.bounded_abandons << ") != sequential ("
          << seq_stats.distance_computations << ", "
          << seq_stats.bounded_abandons << ")";
    }
  }
}

TEST(BatchEngineTest, KNearestMatchesSequential) {
  Workload w = MakeWorkload(4200);
  auto dist = MakeDistance("dE");
  ExhaustiveSearch exact(w.protos, dist);

  QueryStats seq_stats;
  std::vector<std::vector<NeighborResult>> sequential(w.queries.size());
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    sequential[i] = exact.KNearest(w.queries[i], 5, &seq_stats);
  }

  QueryStats batch_stats;
  BatchQueryEngine engine(exact);
  auto batched = engine.KNearest(w.queries, 5, &batch_stats);
  ASSERT_EQ(batched.size(), sequential.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ASSERT_EQ(batched[i].size(), sequential[i].size()) << i;
    for (std::size_t j = 0; j < batched[i].size(); ++j) {
      EXPECT_EQ(batched[i][j].index, sequential[i][j].index) << i;
      EXPECT_EQ(batched[i][j].distance, sequential[i][j].distance) << i;
    }
  }
  EXPECT_TRUE(batch_stats == seq_stats);
}

TEST(BatchEngineTest, ClassifyMatchesSequentialClassifier) {
  DictionaryOptions opt;
  opt.word_count = 60;
  opt.seed = 4300;
  auto strings = GenerateDictionary(opt).strings;
  std::vector<int> labels(strings.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 4);
  }
  PrototypeStore protos(strings);
  Rng rng(4301);
  PrototypeStore queries(
      MakeQueries(strings, 20, 2, Alphabet::Latin(), rng));

  auto dist = MakeDistance("dYB");
  Laesa laesa(protos, dist, 6);
  NearestNeighborClassifier clf(laesa, labels);

  std::vector<int> sequential(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    sequential[i] = clf.Classify(queries[i]);
  }

  BatchQueryEngine engine(laesa);
  EXPECT_EQ(engine.Classify(queries, labels), sequential);
  EXPECT_EQ(clf.ClassifyBatch(queries), sequential);
}

TEST(BatchEngineTest, KnnClassifyBatchMatchesSequential) {
  DictionaryOptions opt;
  opt.word_count = 40;
  opt.seed = 4400;
  auto strings = GenerateDictionary(opt).strings;
  std::vector<int> labels(strings.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 3);
  }
  PrototypeStore protos(strings);
  Rng rng(4401);
  PrototypeStore queries(
      MakeQueries(strings, 15, 2, Alphabet::Latin(), rng));

  auto dist = MakeDistance("dE");
  ExhaustiveSearch exact(protos, dist);
  std::vector<int> sequential(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    sequential[i] = KnnClassify(exact, labels, queries[i], 3);
  }
  EXPECT_EQ(KnnClassifyBatch(exact, labels, queries, 3), sequential);
}

// Every index family now supports the batch engine's k-NN entry point:
// AESA and the BK-tree (the two late additions) must match the exhaustive
// oracle's distances and stay sorted, driven through the engine.
TEST(BatchEngineTest, KNearestCoversAesaAndBkTree) {
  Workload w = MakeWorkload(4500);
  auto dist = MakeDistance("dE");
  ExhaustiveSearch exact(w.protos, dist);
  std::vector<std::vector<NeighborResult>> oracle(w.queries.size());
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    oracle[i] = exact.KNearest(w.queries[i], 4);
  }

  Aesa aesa(w.protos, dist);
  BkTree bk(w.protos, dist);
  for (const NearestNeighborSearcher* searcher :
       {static_cast<const NearestNeighborSearcher*>(&aesa),
        static_cast<const NearestNeighborSearcher*>(&bk)}) {
    QueryStats seq_stats;
    std::vector<std::vector<NeighborResult>> sequential(w.queries.size());
    for (std::size_t i = 0; i < w.queries.size(); ++i) {
      sequential[i] = searcher->KNearest(w.queries[i], 4, &seq_stats);
    }
    QueryStats batch_stats;
    BatchQueryEngine engine(*searcher);
    auto batched = engine.KNearest(w.queries, 4, &batch_stats);
    ASSERT_EQ(batched.size(), sequential.size());
    for (std::size_t i = 0; i < batched.size(); ++i) {
      ASSERT_EQ(batched[i].size(), sequential[i].size()) << i;
      ASSERT_EQ(batched[i].size(), oracle[i].size()) << i;
      for (std::size_t j = 0; j < batched[i].size(); ++j) {
        EXPECT_EQ(batched[i][j].index, sequential[i][j].index) << i;
        EXPECT_EQ(batched[i][j].distance, sequential[i][j].distance) << i;
        EXPECT_NEAR(batched[i][j].distance, oracle[i][j].distance, 1e-9)
            << "query " << i << " rank " << j;
        if (j > 0) {
          EXPECT_LE(batched[i][j - 1].distance, batched[i][j].distance);
        }
      }
    }
    EXPECT_TRUE(batch_stats == seq_stats);
  }
}

TEST(BatchEngineTest, AesaKNearestOneMatchesNearest) {
  Workload w = MakeWorkload(4600);
  auto dist = MakeDistance("dYB");
  Aesa aesa(w.protos, dist);
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    QueryStats sn, sk;
    const NeighborResult a = aesa.Nearest(w.queries[i], &sn);
    const auto b = aesa.KNearest(w.queries[i], 1, &sk);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a.index, b[0].index);
    EXPECT_EQ(a.distance, b[0].distance);
    EXPECT_TRUE(sn == sk);  // k = 1 follows the identical trajectory
  }
}

TEST(BatchEngineTest, KNearestThrowsForUnsupportedBackend) {
  // A minimal searcher without a KNearest override: the default must
  // surface as a catchable exception on the calling thread, not a throw
  // inside a ParallelFor worker (which would terminate the process).
  class NearestOnly final : public NearestNeighborSearcher {
   public:
    NeighborResult Nearest(std::string_view, QueryStats*) const override {
      return {0, 0.0};
    }
    std::size_t size() const override { return 1; }
  };
  NearestOnly searcher;
  BatchQueryEngine engine(searcher);
  PrototypeStore queries(std::vector<std::string>{"ab", "bc", "ca"});
  EXPECT_THROW(engine.KNearest(queries, 2), std::logic_error);
}

// The two-stage pivot pipeline on the flat index: bit-identical to the
// sequential per-query two-stage reference, stats included (distinct
// query strings, so stage deduplication is a no-op).
TEST(BatchEngineTest, PivotStageMatchesSequentialReferenceOnFlatLaesa) {
  Workload w = MakeWorkload(4700);
  for (const auto& name : AllDistanceNames()) {
    auto dist = MakeDistance(name);
    Laesa laesa(w.protos, dist, 8);

    QueryStats seq_stats;
    std::vector<double> row(laesa.pivot_count());
    std::vector<NeighborResult> sequential(w.queries.size());
    for (std::size_t i = 0; i < w.queries.size(); ++i) {
      laesa.ComputePivotRow(w.queries[i], row.data(), &seq_stats);
      sequential[i] =
          laesa.NearestWithPivotRow(w.queries[i], row.data(), &seq_stats);
    }

    for (std::size_t threads : {std::size_t{0}, std::size_t{3}}) {
      BatchQueryEngine::Options opt;
      opt.threads = threads;
      opt.pivot_stage = true;
      BatchQueryEngine engine(laesa, opt);
      QueryStats batch_stats;
      auto batched = engine.Nearest(w.queries, &batch_stats);
      ASSERT_EQ(batched.size(), sequential.size()) << name;
      for (std::size_t i = 0; i < batched.size(); ++i) {
        EXPECT_EQ(batched[i].index, sequential[i].index)
            << name << " threads=" << threads << " q=" << i;
        EXPECT_EQ(batched[i].distance, sequential[i].distance) << name;
      }
      EXPECT_TRUE(batch_stats == seq_stats) << name << " threads=" << threads;
    }
  }
}

TEST(BatchEngineTest, PivotStageKNearestMatchesSequentialReference) {
  Workload w = MakeWorkload(4800);
  auto dist = MakeDistance("dE");
  Laesa laesa(w.protos, dist, 6);
  std::vector<double> row(laesa.pivot_count());
  std::vector<std::vector<NeighborResult>> sequential(w.queries.size());
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    laesa.ComputePivotRow(w.queries[i], row.data());
    sequential[i] = laesa.KNearestWithPivotRow(w.queries[i], 5, row.data());
  }
  BatchQueryEngine::Options opt;
  opt.pivot_stage = true;
  BatchQueryEngine engine(laesa, opt);
  auto batched = engine.KNearest(w.queries, 5);
  ASSERT_EQ(batched.size(), sequential.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ASSERT_EQ(batched[i].size(), sequential[i].size()) << i;
    for (std::size_t j = 0; j < batched[i].size(); ++j) {
      EXPECT_EQ(batched[i][j].index, sequential[i][j].index) << i;
      EXPECT_EQ(batched[i][j].distance, sequential[i][j].distance) << i;
    }
  }
}

// The pipeline's WithPivotRow sweep must agree with the lazy path on the
// *neighbour distance* for metric distances (both are exact searches; the
// trajectories — and so the stats — legitimately differ).
TEST(BatchEngineTest, PivotStageDistancesMatchLazyPathOnMetricDistance) {
  Workload w = MakeWorkload(4900);
  auto dist = MakeDistance("dE");
  Laesa laesa(w.protos, dist, 8);
  BatchQueryEngine::Options opt;
  opt.pivot_stage = true;
  BatchQueryEngine staged(laesa, opt);
  BatchQueryEngine plain(laesa);
  auto a = staged.Nearest(w.queries);
  auto b = plain.Nearest(w.queries);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].distance, b[i].distance) << i;
  }
}

// pivot_stage on a searcher without a pivot stage falls back to the plain
// per-query path (same results and stats).
TEST(BatchEngineTest, PivotStageFallsBackForNonPivotSearchers) {
  Workload w = MakeWorkload(5000);
  auto dist = MakeDistance("dE");
  ExhaustiveSearch exact(w.protos, dist);
  QueryStats plain_stats, staged_stats;
  BatchQueryEngine plain(exact);
  BatchQueryEngine::Options opt;
  opt.pivot_stage = true;
  BatchQueryEngine staged(exact, opt);
  auto a = plain.Nearest(w.queries, &plain_stats);
  auto b = staged.Nearest(w.queries, &staged_stats);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index) << i;
    EXPECT_EQ(a[i].distance, b[i].distance) << i;
  }
  EXPECT_TRUE(plain_stats == staged_stats);
}

TEST(BatchEngineTest, KnnClassifyRejectsZeroK) {
  std::vector<std::string> strings{"aa", "bb"};
  std::vector<int> labels{0, 1};
  ExhaustiveSearch exact(strings, MakeDistance("dE"));
  PrototypeStore queries(std::vector<std::string>{"ab"});
  EXPECT_THROW(KnnClassify(exact, labels, "ab", 0), std::invalid_argument);
  EXPECT_THROW(KnnClassifyBatch(exact, labels, queries, 0),
               std::invalid_argument);
}

TEST(BatchEngineTest, EmptyQuerySpan) {
  std::vector<std::string> strings{"aa", "bb"};
  ExhaustiveSearch exact(strings, MakeDistance("dE"));
  BatchQueryEngine engine(exact);
  PrototypeStore empty;
  QueryStats stats;
  EXPECT_TRUE(engine.Nearest(empty, &stats).empty());
  EXPECT_EQ(stats.distance_computations, 0u);
}

}  // namespace
}  // namespace cned
