#ifndef CNED_TESTS_SNAPSHOT_TEST_UTIL_H_
#define CNED_TESTS_SNAPSHOT_TEST_UTIL_H_

// Shared scratch-file and workload helpers for the snapshot-format tests
// (serialization_test, mapped_index_test): one implementation, so fixes to
// the temp-file naming or the dictionary workload reach every suite.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "datasets/dictionary_gen.h"

namespace cned {

/// Deterministic dictionary workload for round-trip/fuzz tests.
inline std::vector<std::string> Words(std::size_t n, std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = n;
  opt.seed = seed;
  return GenerateDictionary(opt).strings;
}

/// Unique scratch path per test, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + "cned_" + name + "_" +
              std::to_string(static_cast<unsigned long>(::getpid())) +
              ".bin") {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

inline std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

inline void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Re-stamps the checksum footer over `bytes`: strips an existing trailing
/// footer (if any), then appends a fresh one whose CRC matches the payload.
/// Corruption tests that target the *structural* validation use this so
/// their bit edits get past the checksum gate — otherwise every edit would
/// fail as "checksum mismatch" before reaching the check under test.
inline std::vector<char> StampFooter(std::vector<char> bytes) {
  if (bytes.size() >= kBinaryAlignment &&
      std::memcmp(bytes.data() + bytes.size() - kBinaryAlignment,
                  kBinaryFooterMagic, 8) == 0) {
    bytes.resize(bytes.size() - kBinaryAlignment);
  }
  const std::uint32_t crc = Crc32(bytes.data(), bytes.size());
  std::vector<char> footer(kBinaryAlignment, 0);
  std::memcpy(footer.data(), kBinaryFooterMagic, 8);
  std::memcpy(footer.data() + 8, &crc, sizeof(crc));
  bytes.insert(bytes.end(), footer.begin(), footer.end());
  return bytes;
}

/// WriteAll + StampFooter: the edited payload lands on disk with a valid
/// checksum footer.
inline void WriteAllRestamped(const std::string& path,
                              const std::vector<char>& bytes) {
  WriteAll(path, StampFooter(bytes));
}

}  // namespace cned

#endif  // CNED_TESTS_SNAPSHOT_TEST_UTIL_H_
