#ifndef CNED_TESTS_SNAPSHOT_TEST_UTIL_H_
#define CNED_TESTS_SNAPSHOT_TEST_UTIL_H_

// Shared scratch-file and workload helpers for the snapshot-format tests
// (serialization_test, mapped_index_test): one implementation, so fixes to
// the temp-file naming or the dictionary workload reach every suite.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "datasets/dictionary_gen.h"

namespace cned {

/// Deterministic dictionary workload for round-trip/fuzz tests.
inline std::vector<std::string> Words(std::size_t n, std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = n;
  opt.seed = seed;
  return GenerateDictionary(opt).strings;
}

/// Unique scratch path per test, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + "cned_" + name + "_" +
              std::to_string(static_cast<unsigned long>(::getpid())) +
              ".bin") {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

inline std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

inline void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace cned

#endif  // CNED_TESTS_SNAPSHOT_TEST_UTIL_H_
