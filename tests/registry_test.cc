#include "distances/registry.h"

#include <gtest/gtest.h>

namespace cned {
namespace {

TEST(RegistryTest, AllNamesConstructible) {
  for (const auto& name : AllDistanceNames()) {
    auto d = MakeDistance(name);
    ASSERT_NE(d, nullptr) << name;
    EXPECT_EQ(d->name(), name);
  }
}

TEST(RegistryTest, UnknownNameThrows) {
  EXPECT_THROW(MakeDistance("bogus"), std::invalid_argument);
  EXPECT_THROW(MakeDistance(""), std::invalid_argument);
}

TEST(RegistryTest, MetricFlagsMatchPaper) {
  EXPECT_TRUE(MakeDistance("dE")->is_metric());
  EXPECT_TRUE(MakeDistance("dYB")->is_metric());
  EXPECT_TRUE(MakeDistance("dC")->is_metric());
  EXPECT_FALSE(MakeDistance("dsum")->is_metric());
  EXPECT_FALSE(MakeDistance("dmax")->is_metric());
  EXPECT_FALSE(MakeDistance("dmin")->is_metric());
  EXPECT_FALSE(MakeDistance("dMV")->is_metric());   // open for unit costs
  EXPECT_FALSE(MakeDistance("dC,h")->is_metric());  // heuristic
}

TEST(RegistryTest, EvaluationDistancesMatchFigures) {
  auto dists = EvaluationDistances();
  ASSERT_EQ(dists.size(), 5u);
  EXPECT_EQ(dists[0]->name(), "dYB");
  EXPECT_EQ(dists[1]->name(), "dC,h");
  EXPECT_EQ(dists[2]->name(), "dMV");
  EXPECT_EQ(dists[3]->name(), "dmax");
  EXPECT_EQ(dists[4]->name(), "dE");
}

TEST(RegistryTest, ClassificationDistancesMatchTable2) {
  auto dists = ClassificationDistances();
  ASSERT_EQ(dists.size(), 6u);
  EXPECT_EQ(dists[2]->name(), "dC");
  EXPECT_EQ(dists[3]->name(), "dC,h");
}

TEST(RegistryTest, DistancesProduceConsistentValues) {
  // All distances agree that identical strings are at distance zero and
  // give a positive value for a distinct pair.
  for (const auto& name : AllDistanceNames()) {
    auto d = MakeDistance(name);
    EXPECT_DOUBLE_EQ(d->Distance("casa", "casa"), 0.0) << name;
    EXPECT_GT(d->Distance("casa", "cosa"), 0.0) << name;
  }
}

}  // namespace
}  // namespace cned
