#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cned {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  ParallelFor(n, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  bool called = false;
  ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
              /*threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> sum{0};
  ParallelFor(3, [&](std::size_t i) { sum += static_cast<int>(i); },
              /*threads=*/16);
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelForTest, ComputesSameResultAsSerial) {
  const std::size_t n = 5000;
  std::vector<double> parallel_out(n), serial_out(n);
  auto f = [](std::size_t i) {
    double v = static_cast<double>(i);
    return v * v / (v + 1.0);
  };
  ParallelFor(n, [&](std::size_t i) { parallel_out[i] = f(i); });
  for (std::size_t i = 0; i < n; ++i) serial_out[i] = f(i);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelForTest, RethrowsWorkerExceptionOnCaller) {
  try {
    ParallelFor(1000, [](std::size_t i) {
      if (i == 137) throw std::runtime_error("body failed at 137");
    });
    FAIL() << "expected the worker exception to reach the caller";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "body failed at 137");
  }
}

TEST(ParallelForTest, FirstExceptionWinsAndLoopStillJoins) {
  // Every iteration throws; exactly one exception must surface, after all
  // workers have joined (no detached threads touching dead stack frames).
  std::atomic<int> started{0};
  EXPECT_THROW(ParallelFor(64,
                           [&](std::size_t i) {
                             ++started;
                             throw std::invalid_argument(
                                 "iter " + std::to_string(i));
                           }),
               std::invalid_argument);
  EXPECT_GE(started.load(), 1);
}

TEST(ParallelForTest, ExceptionPropagatesFromSingleThreadAndNestedPaths) {
  EXPECT_THROW(
      ParallelFor(4, [](std::size_t) { throw std::runtime_error("serial"); },
                  /*threads=*/1),
      std::runtime_error);
  // Nested ParallelFor runs inline on the worker thread; its exception must
  // ride the outer loop's capture back to the original caller.
  EXPECT_THROW(
      ParallelFor(8,
                  [](std::size_t) {
                    ParallelFor(4, [](std::size_t j) {
                      if (j == 2) throw std::runtime_error("nested");
                    });
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, ThrowingRunStopsDealingRemainingIterations) {
  // After the first throw the other workers stop taking new indices, so a
  // long loop doesn't grind to completion behind a doomed result.
  std::atomic<int> ran{0};
  EXPECT_THROW(ParallelFor(1u << 20,
                           [&](std::size_t i) {
                             ++ran;
                             if (i == 0) throw std::runtime_error("early");
                           }),
               std::runtime_error);
  EXPECT_LT(ran.load(), 1 << 20);
}

}  // namespace
}  // namespace cned
