#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace cned {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  ParallelFor(n, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  bool called = false;
  ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
              /*threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> sum{0};
  ParallelFor(3, [&](std::size_t i) { sum += static_cast<int>(i); },
              /*threads=*/16);
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelForTest, ComputesSameResultAsSerial) {
  const std::size_t n = 5000;
  std::vector<double> parallel_out(n), serial_out(n);
  auto f = [](std::size_t i) {
    double v = static_cast<double>(i);
    return v * v / (v + 1.0);
  };
  ParallelFor(n, [&](std::size_t i) { parallel_out[i] = f(i); });
  for (std::size_t i = 0; i < n; ++i) serial_out[i] = f(i);
  EXPECT_EQ(parallel_out, serial_out);
}

}  // namespace
}  // namespace cned
