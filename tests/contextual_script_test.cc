#include "core/contextual_script.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/contextual.h"
#include "core/contextual_heuristic.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

void ExpectCanonicalOrder(const EditScript& script) {
  // Insertions, then substitutions, then deletions.
  int phase = 0;
  for (const EditOp& op : script.ops) {
    int op_phase = op.kind == EditOpKind::kInsert     ? 0
                   : op.kind == EditOpKind::kSubstitute ? 1
                                                        : 2;
    EXPECT_GE(op_phase, phase);
    phase = op_phase;
  }
}

// Recompute each op's contextual cost while replaying and compare.
void ExpectCostsConsistent(std::string_view x, const EditScript& script) {
  std::string w(x);
  double total = 0.0;
  for (const EditOp& op : script.ops) {
    std::size_t len_before = w.size();
    switch (op.kind) {
      case EditOpKind::kInsert:
        ASSERT_LE(op.pos, w.size());
        w.insert(w.begin() + static_cast<std::ptrdiff_t>(op.pos), op.to);
        EXPECT_NEAR(op.cost, 1.0 / static_cast<double>(len_before + 1), 1e-12);
        break;
      case EditOpKind::kSubstitute:
        ASSERT_LT(op.pos, w.size());
        ASSERT_EQ(w[op.pos], op.from);
        w[op.pos] = op.to;
        EXPECT_NEAR(op.cost, 1.0 / static_cast<double>(len_before), 1e-12);
        break;
      case EditOpKind::kDelete:
        ASSERT_LT(op.pos, w.size());
        ASSERT_EQ(w[op.pos], op.from);
        w.erase(w.begin() + static_cast<std::ptrdiff_t>(op.pos));
        EXPECT_NEAR(op.cost, 1.0 / static_cast<double>(len_before), 1e-12);
        break;
    }
    total += op.cost;
  }
  EXPECT_NEAR(total, script.total_cost, 1e-9);
}

TEST(ContextualAlignTest, PaperExample4Script) {
  EditScript s = ContextualAlign("ababa", "baab");
  EXPECT_NEAR(s.total_cost, 8.0 / 15.0, 1e-12);
  EXPECT_EQ(s.k, 3u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.deletions, 2u);
  ExpectCanonicalOrder(s);
  EXPECT_EQ(ApplyEditScript("ababa", s), "baab");
}

TEST(ContextualAlignTest, ScriptCostEqualsDistance) {
  Rng rng(31);
  Alphabet ab("abc");
  for (int t = 0; t < 150; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 9);
    std::string y = StringGen::UniformLength(rng, ab, 0, 9);
    EditScript s = ContextualAlign(x, y);
    EXPECT_NEAR(s.total_cost, ContextualDistance(x, y), 1e-9)
        << "x=" << x << " y=" << y;
    EXPECT_EQ(ApplyEditScript(x, s), y) << "x=" << x << " y=" << y;
    ExpectCanonicalOrder(s);
    ExpectCostsConsistent(x, s);
  }
}

TEST(ContextualAlignTest, MismatchCaseUsesLongerPath) {
  // dC(abc, dea) = 9/10 over k = 4 with 2 insertions (see contextual_test).
  EditScript s = ContextualAlign("abc", "dea");
  EXPECT_EQ(s.k, 4u);
  EXPECT_EQ(s.insertions, 2u);
  EXPECT_EQ(s.substitutions, 0u);
  EXPECT_EQ(s.deletions, 2u);
  EXPECT_NEAR(s.total_cost, 0.9, 1e-12);
  EXPECT_EQ(ApplyEditScript("abc", s), "dea");
}

TEST(ContextualAlignTest, IdenticalStringsEmptyScript) {
  EditScript s = ContextualAlign("same", "same");
  EXPECT_TRUE(s.ops.empty());
  EXPECT_DOUBLE_EQ(s.total_cost, 0.0);
  EXPECT_EQ(ApplyEditScript("same", s), "same");
}

TEST(ContextualAlignTest, MemoryGuardThrows) {
  std::string big(200, 'a'), other(200, 'b');
  EXPECT_THROW(ContextualAlign(big, other, /*max_cells=*/1000),
               std::length_error);
}

TEST(ContextualAlignHeuristicTest, CostEqualsHeuristicDistance) {
  Rng rng(32);
  Alphabet ab("abcd");
  for (int t = 0; t < 150; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 12);
    std::string y = StringGen::UniformLength(rng, ab, 0, 12);
    EditScript s = ContextualAlignHeuristic(x, y);
    EXPECT_NEAR(s.total_cost, ContextualHeuristicDistance(x, y), 1e-9)
        << "x=" << x << " y=" << y;
    EXPECT_EQ(ApplyEditScript(x, s), y) << "x=" << x << " y=" << y;
    EXPECT_EQ(s.k, ContextualHeuristicDetailed(x, y).k);
    ExpectCanonicalOrder(s);
    ExpectCostsConsistent(x, s);
  }
}

TEST(ContextualAlignHeuristicTest, LargeInputsWork) {
  Rng rng(33);
  Alphabet ab("ab");
  std::string x = StringGen::Uniform(rng, ab, 600);
  std::string y = StringGen::Uniform(rng, ab, 500);
  EditScript s = ContextualAlignHeuristic(x, y);
  EXPECT_EQ(ApplyEditScript(x, s), y);
}

TEST(ApplyEditScriptTest, RejectsCorruptScripts) {
  EditScript s = ContextualAlign("abc", "abd");
  // Applying to the wrong source must throw on the 'from' check.
  EXPECT_THROW(ApplyEditScript("xyz", s), std::invalid_argument);
}

TEST(FormatEditScriptTest, MentionsEveryOperation) {
  EditScript s = ContextualAlign("abc", "dea");
  std::string text = FormatEditScript(s);
  EXPECT_NE(text.find("ins"), std::string::npos);
  EXPECT_NE(text.find("del"), std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
}

}  // namespace
}  // namespace cned
