#include "common/harmonic.h"

#include <gtest/gtest.h>

#include "common/rational.h"

namespace cned {
namespace {

TEST(HarmonicTest, HZeroIsZero) {
  HarmonicTable t;
  EXPECT_DOUBLE_EQ(t.H(0), 0.0);
}

TEST(HarmonicTest, KnownPrefixValues) {
  HarmonicTable t;
  EXPECT_DOUBLE_EQ(t.H(1), 1.0);
  EXPECT_DOUBLE_EQ(t.H(2), 1.5);
  EXPECT_NEAR(t.H(4), 25.0 / 12.0, 1e-12);
}

TEST(HarmonicTest, RangeMatchesExactRational) {
  HarmonicTable t;
  for (std::size_t from = 1; from <= 20; ++from) {
    for (std::size_t to = from; to <= 30; ++to) {
      double exact = Rational::HarmonicRange(static_cast<std::int64_t>(from),
                                             static_cast<std::int64_t>(to))
                         .ToDouble();
      EXPECT_NEAR(t.Range(from, to), exact, 1e-12)
          << "from=" << from << " to=" << to;
    }
  }
}

TEST(HarmonicTest, EmptyRangeIsZero) {
  HarmonicTable t;
  EXPECT_DOUBLE_EQ(t.Range(5, 4), 0.0);
  EXPECT_DOUBLE_EQ(t.Range(100, 1), 0.0);
}

TEST(HarmonicTest, GrowsOnDemand) {
  HarmonicTable t;
  EXPECT_GT(t.H(5000), 9.0);  // H(5000) ~ 9.09
  EXPECT_GE(t.size(), 5001u);
}

TEST(HarmonicTest, MonotoneIncreasing) {
  HarmonicTable t;
  for (std::size_t n = 1; n < 100; ++n) {
    EXPECT_GT(t.H(n), t.H(n - 1));
  }
}

TEST(HarmonicTest, GlobalInstanceIsShared) {
  HarmonicTable& a = GlobalHarmonic();
  HarmonicTable& b = GlobalHarmonic();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace cned
