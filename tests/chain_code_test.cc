#include "strings/chain_code.h"

#include <gtest/gtest.h>

#include "datasets/digit_contours.h"

namespace cned {
namespace {

TEST(DifferentialChainCodeTest, BasicDifferences) {
  // 0,0,2,7: diffs mod 8 = 0, 2, 5.
  EXPECT_EQ(DifferentialChainCode("0027"), "025");
  EXPECT_EQ(DifferentialChainCode("00"), "0");
  EXPECT_EQ(DifferentialChainCode("7"), "");
  EXPECT_EQ(DifferentialChainCode(""), "");
}

TEST(DifferentialChainCodeTest, RotationBy45DegreesIsInvariant) {
  // Rotating a shape by 45 degrees adds 1 (mod 8) to every absolute
  // direction, which cancels in the differential code.
  std::string code = "001224667";
  std::string rotated;
  for (char c : code) rotated.push_back(static_cast<char>('0' + (c - '0' + 1) % 8));
  EXPECT_EQ(DifferentialChainCode(code), DifferentialChainCode(rotated));
}

TEST(DifferentialChainCodeTest, RejectsForeignSymbols) {
  EXPECT_THROW(DifferentialChainCode("08"), std::invalid_argument);
  EXPECT_THROW(DifferentialChainCode("ab"), std::invalid_argument);
}

TEST(CanonicalRotationTest, SmallExamples) {
  EXPECT_EQ(CanonicalRotation("bca"), "abc");
  EXPECT_EQ(CanonicalRotation("cab"), "abc");
  EXPECT_EQ(CanonicalRotation("abc"), "abc");
  EXPECT_EQ(CanonicalRotation("aaa"), "aaa");
  EXPECT_EQ(CanonicalRotation(""), "");
  EXPECT_EQ(CanonicalRotation("ba"), "ab");
}

TEST(CanonicalRotationTest, AllRotationsMapToSameCanonical) {
  std::string s = "0312200311";
  std::string canon = CanonicalRotation(s);
  for (std::size_t r = 0; r < s.size(); ++r) {
    std::string rotated = s.substr(r) + s.substr(0, r);
    EXPECT_EQ(CanonicalRotation(rotated), canon) << "rotation " << r;
  }
}

TEST(CanonicalRotationTest, OutputIsARotationOfInput) {
  std::string s = "210743215";
  std::string canon = CanonicalRotation(s);
  std::string doubled = s + s;
  EXPECT_NE(doubled.find(canon), std::string::npos);
  EXPECT_EQ(canon.size(), s.size());
}

TEST(CanonicalRotationTest, IsMinimalAmongAllRotations) {
  std::string s = "53102142";
  std::string canon = CanonicalRotation(s);
  for (std::size_t r = 0; r < s.size(); ++r) {
    std::string rotated = s.substr(r) + s.substr(0, r);
    EXPECT_LE(canon, rotated);
  }
}

TEST(ContourSignatureTest, StartPointInvariantOnRealContours) {
  // Tracing the same closed contour from a different start pixel yields a
  // rotation of the chain code; the signature must coincide.
  DigitContourOptions opt;
  std::string code = RenderDigitChainCode(3, 777, opt);
  ASSERT_GE(code.size(), 8u);
  std::string rotated = code.substr(5) + code.substr(0, 5);
  EXPECT_EQ(ContourSignature(code), ContourSignature(rotated));
}

}  // namespace
}  // namespace cned
