#include "search/aesa.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "search/exhaustive.h"
#include "search/laesa.h"

namespace cned {
namespace {

std::vector<std::string> SmallDictionary(std::size_t n, std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = n;
  opt.seed = seed;
  return GenerateDictionary(opt).strings;
}

TEST(AesaTest, ExactForMetricDistance) {
  auto protos = SmallDictionary(150, 201);
  Rng rng(202);
  auto queries = MakeQueries(protos, 40, 2, Alphabet::Latin(), rng);
  auto dist = MakeDistance("dE");
  Aesa aesa(protos, dist);
  ExhaustiveSearch exact(protos, dist);
  for (const auto& q : queries) {
    EXPECT_NEAR(aesa.Nearest(q).distance, exact.Nearest(q).distance, 1e-9);
  }
}

TEST(AesaTest, QuadraticPreprocessing) {
  auto protos = SmallDictionary(40, 203);
  Aesa aesa(protos, MakeDistance("dE"));
  EXPECT_EQ(aesa.preprocessing_computations(), 40u * 39u / 2u);
}

TEST(AesaTest, FewerQueryComputationsThanLaesa) {
  // AESA's full matrix gives at least as strong elimination as LAESA's
  // pivot rows on average.
  auto protos = SmallDictionary(300, 204);
  Rng rng(205);
  auto queries = MakeQueries(protos, 50, 2, Alphabet::Latin(), rng);
  auto dist = MakeDistance("dE");

  Aesa aesa(protos, dist);
  Aesa::QueryStats astats;
  for (const auto& q : queries) aesa.Nearest(q, &astats);

  Laesa laesa(protos, dist, 10);
  Laesa::QueryStats lstats;
  for (const auto& q : queries) laesa.Nearest(q, &lstats);

  EXPECT_LT(astats.distance_computations, lstats.distance_computations);
}

TEST(AesaTest, SinglePrototype) {
  std::vector<std::string> one{"solo"};
  Aesa aesa(one, MakeDistance("dE"));
  EXPECT_EQ(aesa.Nearest("sole").index, 0u);
}

TEST(AesaTest, EmptySetThrows) {
  std::vector<std::string> empty;
  EXPECT_THROW(Aesa(empty, MakeDistance("dE")), std::invalid_argument);
}

}  // namespace
}  // namespace cned
