// Differential contract for the quantized pivot tables
// (search/table_quant.h) across every serving path:
//
//   * vs f64 — at every quantized precision the returned nearest DISTANCE
//     is exactly the f64 distance (admissible bounds never eliminate a
//     true neighbour; the index is compared tie-tolerantly, since a looser
//     bound may legitimately surface a different member of an exact tie);
//   * within a precision — flat, sharded, mapped and distributed
//     (fork-per-replica ServeRouter, R=2) answers are bit-identical
//     INCLUDING QueryStats, under every available sweep-kernel variant.
//
// The second contract is what makes quantization deployable: a mixed fleet
// (AVX2 primaries, scalar standbys, mapped snapshots) at one precision
// must agree byte-for-byte, or replica-group eviction would fire on
// healthy workers.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/perturb.h"
#include "datasets/prototype_store.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/registry.h"
#include "search/laesa.h"
#include "search/sharded_laesa.h"
#include "search/sweep_kernel.h"
#include "search/table_quant.h"
#include "serve/router.h"
#include "serve/shard_snapshot.h"
#include "tests/snapshot_test_util.h"

namespace cned {
namespace {

constexpr TablePrecision kQuantPrecisions[] = {
    TablePrecision::kF32, TablePrecision::kF16, TablePrecision::kU8};

struct Probe {
  NeighborResult nn;
  std::vector<NeighborResult> knn;
  QueryStats stats;
};

template <typename Index>
Probe RunProbe(const Index& index, const std::string& query) {
  Probe p;
  p.nn = index.Nearest(query, &p.stats);
  p.knn = index.KNearest(query, 3, &p.stats);
  return p;
}

void ExpectIdentical(const Probe& a, const Probe& b, const std::string& ctx) {
  EXPECT_EQ(a.nn.index, b.nn.index) << ctx;
  EXPECT_EQ(a.nn.distance, b.nn.distance) << ctx;
  EXPECT_TRUE(a.stats == b.stats)
      << ctx << " computations " << a.stats.distance_computations << " vs "
      << b.stats.distance_computations;
  ASSERT_EQ(a.knn.size(), b.knn.size()) << ctx;
  for (std::size_t i = 0; i < a.knn.size(); ++i) {
    EXPECT_EQ(a.knn[i].index, b.knn[i].index) << ctx << " k-rank " << i;
    EXPECT_EQ(a.knn[i].distance, b.knn[i].distance) << ctx << " k-rank " << i;
  }
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/cned_quant_XXXXXX";
    char* p = mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    if (!path.empty()) std::filesystem::remove_all(path);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

/// Restores the startup-active kernel variant when a test is done forcing.
class KernelGuard {
 public:
  KernelGuard() : saved_(ActiveSweepKernels().name) {}
  ~KernelGuard() { SetActiveSweepKernels(saved_); }

 private:
  std::string saved_;
};

// --- Contract 1: exact results vs f64, bit-identity within a precision ----

TEST(QuantizedTableTest, ResultsMatchF64AcrossFlatShardedAndMappedPaths) {
  const auto words = Words(150, 8208);
  Rng rng(515);
  const auto queries = MakeQueries(words, 10, 2, Alphabet::Latin(), rng);
  PrototypeStore flat_store(words);
  ShardedPrototypeStore sharded_store(words, 4);

  for (const char* dist_name : {"dE", "dYB"}) {
    auto dist = MakeDistance(dist_name);
    const Laesa reference(flat_store, dist, 8, /*first_pivot=*/0,
                          TablePrecision::kF64);
    for (TablePrecision prec : kQuantPrecisions) {
      const Laesa flat(flat_store, dist, 8, /*first_pivot=*/0, prec);
      const ShardedLaesa sharded(sharded_store, dist, 8, /*first_pivot=*/0,
                                 prec);
      TempFile file(std::string("quant_diff_") + TablePrecisionName(prec) +
                    "_" + dist_name);
      flat.Save(file.path());
      const Laesa mapped = Laesa::Map(file.path(), flat_store, dist);

      for (const auto& q : queries) {
        const std::string ctx = std::string(dist_name) + " " +
                                TablePrecisionName(prec) + " q=" + q;
        const Probe ref = RunProbe(reference, q);
        const Probe got = RunProbe(flat, q);

        // vs f64: distances are exact — the quantized bounds are
        // admissible, so no true neighbour is ever eliminated. The index
        // is checked through the distance (tie-tolerant): a returned
        // distance equal to the f64 one proves the neighbour is (one of)
        // the true nearest.
        EXPECT_EQ(got.nn.distance, ref.nn.distance) << ctx;
        ASSERT_EQ(got.knn.size(), ref.knn.size()) << ctx;
        for (std::size_t i = 0; i < ref.knn.size(); ++i) {
          EXPECT_EQ(got.knn[i].distance, ref.knn[i].distance)
              << ctx << " k-rank " << i;
        }
        // Quantization only loosens the bounds: it can never eliminate
        // more candidates than the exact table.
        EXPECT_GE(got.stats.distance_computations,
                  ref.stats.distance_computations)
            << ctx;

        // Within the precision: sharded and mapped are bit-identical to
        // the flat build, stats included (the sharded build quantizes each
        // global row with one shared meta precisely for this).
        ExpectIdentical(got, RunProbe(sharded, q), ctx + " [sharded]");
        ExpectIdentical(got, RunProbe(mapped, q), ctx + " [mapped]");
      }
    }
  }
}

// --- Contract 2: identity across kernel variants at every precision -------

TEST(QuantizedTableTest, QuantizedIndexBitIdenticalAcrossKernels) {
  KernelGuard guard;
  const auto words = Words(160, 8209);
  Rng rng(616);
  const auto queries = MakeQueries(words, 8, 2, Alphabet::Latin(), rng);
  PrototypeStore flat_store(words);
  ShardedPrototypeStore sharded_store(words, 3);
  auto dist = MakeDistance("dE");

  for (TablePrecision prec : kQuantPrecisions) {
    const Laesa flat(flat_store, dist, 7, /*first_pivot=*/0, prec);
    const ShardedLaesa sharded(sharded_store, dist, 7, /*first_pivot=*/0,
                               prec);

    ASSERT_TRUE(SetActiveSweepKernels("scalar"));
    std::vector<Probe> flat_ref, sharded_ref;
    for (const auto& q : queries) {
      flat_ref.push_back(RunProbe(flat, q));
      sharded_ref.push_back(RunProbe(sharded, q));
    }
    for (const SweepKernels* k : AvailableSweepKernels()) {
      ASSERT_TRUE(SetActiveSweepKernels(k->name));
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const std::string ctx = std::string(TablePrecisionName(prec)) +
                                " kernel " + k->name + " q=" + queries[i];
        ExpectIdentical(flat_ref[i], RunProbe(flat, queries[i]), ctx);
        ExpectIdentical(sharded_ref[i], RunProbe(sharded, queries[i]),
                        ctx + " [sharded]");
      }
    }
  }
}

// --- Contract 3: the distributed tier serves quantized shards exactly -----

TEST(QuantizedTableTest, DistributedReplicasServeQuantizedBitIdentically) {
  const auto words = Words(120, 8210);
  Rng rng(717);
  const auto queries = MakeQueries(words, 5, 2, Alphabet::Latin(), rng);
  ShardedPrototypeStore store(words, 3);
  auto dist = MakeDistance("dE");
  const ShardedLaesa reference(store, dist, 8, /*first_pivot=*/0,
                               TablePrecision::kF64);

  // f32 is covered by the in-process paths above; fork the replica fleet
  // only for the two precisions with nontrivial decode arithmetic.
  for (TablePrecision prec :
       {TablePrecision::kF16, TablePrecision::kU8}) {
    const ShardedLaesa index(store, dist, 8, /*first_pivot=*/0, prec);
    TempDir dir;
    SaveServingSnapshot(index, dir.path);

    ServeOptions opt;
    opt.distance = "dE";
    opt.op_timeout_ms = 400;
    opt.op_retries = 2;
    opt.backoff_base_ms = 2;
    ServeRouter router(dir.path, opt);
    ASSERT_EQ(router.shard_count(), 3u);
    ASSERT_EQ(router.replica_count(), 2u);

    for (const auto& q : queries) {
      const std::string ctx =
          std::string(TablePrecisionName(prec)) + " q=" + q;
      QueryStats want_stats;
      const auto want = index.KNearest(q, 3, &want_stats);
      const ServeResult got = router.KNearest(q, 3);
      EXPECT_FALSE(got.partial) << ctx;
      EXPECT_TRUE(got.missing_shards.empty()) << ctx;
      ASSERT_EQ(got.neighbors.size(), want.size()) << ctx;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got.neighbors[i].index, want[i].index) << ctx << " i=" << i;
        EXPECT_EQ(got.neighbors[i].distance, want[i].distance)
            << ctx << " i=" << i;
      }
      EXPECT_TRUE(got.stats == want_stats)
          << ctx << ": distributed " << got.stats.distance_computations
          << " computations vs in-process "
          << want_stats.distance_computations;

      // And the distributed quantized answer is the exact f64 answer.
      QueryStats ref_stats;
      const auto ref = reference.KNearest(q, 3, &ref_stats);
      ASSERT_EQ(got.neighbors.size(), ref.size()) << ctx;
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(got.neighbors[i].distance, ref[i].distance)
            << ctx << " vs f64, i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace cned
