// Parameterized property suite: the axioms and cross-distance invariants
// every registered distance must satisfy, swept over all distances and a
// grid of workload shapes (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/rng.h"
#include "distances/levenshtein.h"
#include "distances/registry.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

// ---------------------------------------------------------------------------
// Axioms per distance.
// ---------------------------------------------------------------------------

class DistanceAxiomsTest : public ::testing::TestWithParam<std::string> {
 protected:
  StringDistancePtr dist_ = MakeDistance(GetParam());
};

TEST_P(DistanceAxiomsTest, IdentityOfIndiscernibles) {
  Rng rng(1001);
  Alphabet ab("abcd");
  for (int t = 0; t < 60; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 12);
    EXPECT_DOUBLE_EQ(dist_->Distance(x, x), 0.0) << "x=" << x;
  }
}

TEST_P(DistanceAxiomsTest, PositivityForDistinctStrings) {
  Rng rng(1002);
  Alphabet ab("ab");
  for (int t = 0; t < 60; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 10);
    std::string y = StringGen::UniformLength(rng, ab, 0, 10);
    if (x == y) continue;
    EXPECT_GT(dist_->Distance(x, y), 0.0) << "x=" << x << " y=" << y;
  }
}

TEST_P(DistanceAxiomsTest, Symmetry) {
  Rng rng(1003);
  Alphabet ab("abc");
  for (int t = 0; t < 60; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 12);
    std::string y = StringGen::UniformLength(rng, ab, 0, 12);
    EXPECT_NEAR(dist_->Distance(x, y), dist_->Distance(y, x), 1e-12)
        << "x=" << x << " y=" << y;
  }
}

TEST_P(DistanceAxiomsTest, TriangleInequalityWhenClaimedMetric) {
  if (!dist_->is_metric()) GTEST_SKIP() << "not claimed to be a metric";
  Rng rng(1004);
  Alphabet ab("ab");
  for (int t = 0; t < 150; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 9);
    std::string y = StringGen::UniformLength(rng, ab, 0, 9);
    std::string z = StringGen::UniformLength(rng, ab, 0, 9);
    EXPECT_LE(dist_->Distance(x, z),
              dist_->Distance(x, y) + dist_->Distance(y, z) + 1e-9)
        << "x=" << x << " y=" << y << " z=" << z;
  }
}

TEST_P(DistanceAxiomsTest, InsensitiveToSharedPrefixGrowth) {
  // Appending the same prefix to both strings never increases any
  // length-normalised distance (and leaves dE unchanged); sanity rather
  // than an axiom: check d(px, py) <= d(x, y) + epsilon fails for dmin-like
  // cases, so we only require the distance stays finite and non-negative.
  Rng rng(1005);
  Alphabet ab("abc");
  for (int t = 0; t < 40; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 1, 8);
    std::string y = StringGen::UniformLength(rng, ab, 1, 8);
    std::string p = StringGen::UniformLength(rng, ab, 1, 5);
    double d = dist_->Distance(p + x, p + y);
    EXPECT_GE(d, 0.0);
    EXPECT_TRUE(std::isfinite(d));
  }
}

TEST_P(DistanceAxiomsTest, DeterministicEvaluation) {
  Rng rng(1006);
  Alphabet ab("abcd");
  std::string x = StringGen::UniformLength(rng, ab, 4, 12);
  std::string y = StringGen::UniformLength(rng, ab, 4, 12);
  double first = dist_->Distance(x, y);
  for (int t = 0; t < 5; ++t) {
    EXPECT_DOUBLE_EQ(dist_->Distance(x, y), first);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistances, DistanceAxiomsTest,
                         ::testing::ValuesIn(AllDistanceNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ',') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Cross-distance invariants on shared pairs.
// ---------------------------------------------------------------------------

struct ShapeParam {
  std::string alphabet;
  std::size_t min_len;
  std::size_t max_len;
};

class CrossDistanceTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(CrossDistanceTest, NormalisedDistancesBoundedByRawCounterparts) {
  const ShapeParam& p = GetParam();
  Rng rng(1101);
  Alphabet ab(p.alphabet);
  auto dsum = MakeDistance("dsum");
  auto dmax = MakeDistance("dmax");
  auto dmin = MakeDistance("dmin");
  auto dyb = MakeDistance("dYB");
  auto dmv = MakeDistance("dMV");
  for (int t = 0; t < 60; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, p.min_len, p.max_len);
    std::string y = StringGen::UniformLength(rng, ab, p.min_len, p.max_len);
    double de = static_cast<double>(LevenshteinDistance(x, y));
    // dsum <= dmax <= dmin; dYB in [0,1]; dMV <= dmax; all <= dE for
    // non-empty strings.
    EXPECT_LE(dsum->Distance(x, y), dmax->Distance(x, y) + 1e-12);
    EXPECT_LE(dmax->Distance(x, y), dmin->Distance(x, y) + 1e-12);
    EXPECT_LE(dyb->Distance(x, y), 1.0 + 1e-12);
    EXPECT_LE(dmv->Distance(x, y), dmax->Distance(x, y) + 1e-12);
    if (!x.empty() || !y.empty()) {
      EXPECT_LE(dmax->Distance(x, y), de + 1e-12);
    }
  }
}

TEST_P(CrossDistanceTest, ContextualSandwichedByHarmonicBounds) {
  // dE/(max length reachable) style bounds: each of the k >= dE operations
  // of an optimal path costs at least 1/(|x|+|y|) and at most 1, so
  //   dE/( |x|+|y| ) <= dC <= dC,h <= dE (for non-empty inputs).
  const ShapeParam& p = GetParam();
  Rng rng(1102);
  Alphabet ab(p.alphabet);
  auto dc = MakeDistance("dC");
  auto dch = MakeDistance("dC,h");
  for (int t = 0; t < 40; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, p.min_len, p.max_len);
    std::string y = StringGen::UniformLength(rng, ab, p.min_len, p.max_len);
    if (x.empty() && y.empty()) continue;
    double de = static_cast<double>(LevenshteinDistance(x, y));
    double c = dc->Distance(x, y);
    double ch = dch->Distance(x, y);
    EXPECT_GE(c + 1e-12, de / static_cast<double>(x.size() + y.size()))
        << "x=" << x << " y=" << y;
    EXPECT_LE(c, ch + 1e-12);
    EXPECT_LE(ch, de + 1e-12) << "x=" << x << " y=" << y;
  }
}

TEST_P(CrossDistanceTest, ContextualAgreesWithHeuristicOnEqualOrSubsetCases) {
  // When y is obtained from x by deletions only (or insertions only), the
  // minimal path has no substitutions and k = dE is provably optimal, so
  // the heuristic must equal the exact distance.
  const ShapeParam& p = GetParam();
  Rng rng(1103);
  Alphabet ab(p.alphabet);
  auto dc = MakeDistance("dC");
  auto dch = MakeDistance("dC,h");
  for (int t = 0; t < 40; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 1, p.max_len);
    std::string y;
    for (char c : x) {
      if (rng.Chance(0.7)) y.push_back(c);  // subsequence of x
    }
    EXPECT_NEAR(dc->Distance(x, y), dch->Distance(x, y), 1e-12)
        << "x=" << x << " y=" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadShapes, CrossDistanceTest,
    ::testing::Values(ShapeParam{"ab", 0, 8}, ShapeParam{"abcd", 0, 12},
                      ShapeParam{"abcdefgh", 2, 16},
                      ShapeParam{"ACGT", 5, 24}),
    [](const auto& info) {
      return "alpha" + std::to_string(info.param.alphabet.size()) + "_len" +
             std::to_string(info.param.max_len);
    });

}  // namespace
}  // namespace cned
