// Binary serialization contracts: a saved-and-loaded
// PrototypeStore / Laesa / ShardedPrototypeStore / ShardedLaesa must
// reproduce identical query results and stats across every registered
// distance, the on-disk sections must honour the 64-byte-aligned versioned
// header layout, and corrupt / truncated / wrong-version files must fail
// loudly instead of loading garbage.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "datasets/perturb.h"
#include "datasets/prototype_store.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/registry.h"
#include "search/laesa.h"
#include "search/sharded_laesa.h"
#include "search/table_quant.h"
#include "tests/snapshot_test_util.h"

namespace cned {
namespace {

TEST(SerializationTest, PrototypeStoreRoundTrip) {
  const auto words = Words(80, 7100);
  PrototypeStore store(words);
  TempFile file("store");
  store.SaveBinary(file.path());
  PrototypeStore loaded = PrototypeStore::LoadBinary(file.path());
  ASSERT_EQ(loaded.size(), store.size());
  EXPECT_EQ(loaded.arena_bytes(), store.arena_bytes());
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(loaded.view(i), store.view(i)) << i;
    EXPECT_EQ(loaded.length(i), store.length(i)) << i;
  }
}

TEST(SerializationTest, EmptyPrototypeStoreRoundTrip) {
  PrototypeStore store;
  TempFile file("empty_store");
  store.SaveBinary(file.path());
  EXPECT_EQ(PrototypeStore::LoadBinary(file.path()).size(), 0u);
}

// The acceptance contract: for every registered distance, a saved/loaded
// index answers queries with bit-identical neighbours, distances and stats.
TEST(SerializationTest, LaesaGoldenRoundTripAcrossAllDistances) {
  const auto words = Words(60, 7200);
  PrototypeStore store(words);
  Rng rng(7201);
  const auto queries = MakeQueries(words, 10, 2, Alphabet::Latin(), rng);
  for (const auto& name : AllDistanceNames()) {
    auto dist = MakeDistance(name);
    Laesa original(store, dist, 6);
    TempFile file("laesa_" + name);
    original.Save(file.path());
    Laesa loaded = Laesa::Load(file.path(), store, dist);
    EXPECT_EQ(loaded.pivots(), original.pivots()) << name;
    for (const auto& q : queries) {
      QueryStats sa, sb;
      const NeighborResult a = original.Nearest(q, &sa);
      const NeighborResult b = loaded.Nearest(q, &sb);
      EXPECT_EQ(a.index, b.index) << name << " q=" << q;
      EXPECT_EQ(a.distance, b.distance) << name << " q=" << q;
      EXPECT_TRUE(sa == sb) << name << " q=" << q;
    }
  }
}

TEST(SerializationTest, ShardedStoreAndIndexRoundTripAcrossAllDistances) {
  const auto words = Words(60, 7300);
  std::vector<int> labels(words.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 3);
  }
  ShardedPrototypeStore store(words, 4, labels);
  TempFile store_file("sharded_store");
  store.SaveBinary(store_file.path());
  ShardedPrototypeStore loaded_store =
      ShardedPrototypeStore::LoadBinary(store_file.path());
  ASSERT_EQ(loaded_store.shard_count(), store.shard_count());
  ASSERT_EQ(loaded_store.size(), store.size());
  EXPECT_EQ(loaded_store.labels(), store.labels());
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(loaded_store.view(i), store.view(i)) << i;
  }

  Rng rng(7301);
  const auto queries = MakeQueries(words, 8, 2, Alphabet::Latin(), rng);
  for (const auto& name : AllDistanceNames()) {
    auto dist = MakeDistance(name);
    ShardedLaesa original(store, dist, 5);
    TempFile file("sharded_laesa_" + name);
    original.Save(file.path());
    // Load against the *loaded* store: the full serving path — both halves
    // of the snapshot come off disk.
    ShardedLaesa loaded = ShardedLaesa::Load(file.path(), loaded_store, dist);
    EXPECT_EQ(loaded.pivots(), original.pivots()) << name;
    for (const auto& q : queries) {
      QueryStats sa, sb;
      const NeighborResult a = original.Nearest(q, &sa);
      const NeighborResult b = loaded.Nearest(q, &sb);
      EXPECT_EQ(a.index, b.index) << name << " q=" << q;
      EXPECT_EQ(a.distance, b.distance) << name << " q=" << q;
      EXPECT_TRUE(sa == sb) << name << " q=" << q;
    }
  }
}

TEST(SerializationTest, HeaderLayoutIsAlignedAndVersioned) {
  const auto words = Words(20, 7400);
  PrototypeStore store(words);
  TempFile file("layout");
  store.SaveBinary(file.path());
  const auto bytes = ReadAll(file.path());
  ASSERT_GE(bytes.size(), kBinaryAlignment);
  // Magic in the first 8 bytes, version at offset 8, counts from 16.
  EXPECT_EQ(std::string(bytes.data(), 4), "CNED");
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  EXPECT_EQ(version, 1u);
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data() + 16, sizeof(count));
  EXPECT_EQ(count, store.size());
  // Every section starts on a 64-byte boundary and Finish() pads the
  // payload before appending the 64-byte checksum footer, so the whole
  // file is a whole number of alignment blocks ending in the footer magic.
  EXPECT_EQ(bytes.size() % kBinaryAlignment, 0u);
  ASSERT_GE(bytes.size(), 2 * kBinaryAlignment);
  EXPECT_EQ(std::memcmp(bytes.data() + bytes.size() - kBinaryAlignment,
                        kBinaryFooterMagic, 8),
            0);
}

// ---------------------------------------------------------------------------
// Checksum footer: a bit flip anywhere in the payload or a truncated footer
// must fail loudly — in the copying loader always, in the mapped loader
// whenever verification is requested.
// ---------------------------------------------------------------------------

TEST(SerializationTest, LoadRejectsBitFlipInArena) {
  const auto words = Words(40, 9100);
  PrototypeStore store(words);
  TempFile file("crc_bitflip");
  store.SaveBinary(file.path());
  auto bytes = ReadAll(file.path());
  // Flip one bit in the last payload block — inside the arena section,
  // where no structural check could ever notice (the characters are
  // opaque). Only the checksum catches this class of corruption.
  bytes[bytes.size() - kBinaryAlignment - 1] ^= 0x10;
  WriteAll(file.path(), bytes);
  try {
    (void)PrototypeStore::LoadBinary(file.path());
    FAIL() << "expected checksum mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
  // The standalone verification pass (what the serving tier's workers run
  // before mapping a shard) rejects it too...
  EXPECT_THROW(VerifySnapshotChecksum(file.path()), std::runtime_error);
  // ...as does a mapped load with verification requested.
  MappedReader reader(MappedFile::Open(file.path()),
                      /*verify_checksum=*/false);
  EXPECT_THROW(reader.VerifyChecksum(), std::runtime_error);
  EXPECT_THROW(
      MappedReader(MappedFile::Open(file.path()), /*verify_checksum=*/true),
      std::runtime_error);
}

TEST(SerializationTest, LoadRejectsTruncatedFooter) {
  const auto words = Words(20, 9200);
  PrototypeStore store(words);
  TempFile file("crc_trunc_footer");
  store.SaveBinary(file.path());
  auto bytes = ReadAll(file.path());
  bytes.resize(bytes.size() - 10);  // cut into the footer block
  WriteAll(file.path(), bytes);
  try {
    (void)PrototypeStore::LoadBinary(file.path());
    FAIL() << "expected missing footer";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("footer"), std::string::npos);
  }
  EXPECT_THROW(PrototypeStore::Map(file.path()), std::runtime_error);
  EXPECT_THROW(VerifySnapshotChecksum(file.path()), std::runtime_error);
}

TEST(SerializationTest, VerifySnapshotChecksumAcceptsIntactFiles) {
  const auto words = Words(30, 9300);
  ShardedPrototypeStore store(words, 3);
  ShardedLaesa index(store, MakeDistance("dE"), 4);
  TempFile store_file("crc_ok_store");
  TempFile index_file("crc_ok_index");
  store.SaveBinary(store_file.path());
  index.Save(index_file.path());
  EXPECT_NO_THROW(VerifySnapshotChecksum(store_file.path()));
  EXPECT_NO_THROW(VerifySnapshotChecksum(index_file.path()));
  // CNED_SNAPSHOT_VERIFY=1 routes every mapped load through the same check.
  ::setenv("CNED_SNAPSHOT_VERIFY", "1", 1);
  EXPECT_NO_THROW(ShardedPrototypeStore::Map(store_file.path()));
  ::unsetenv("CNED_SNAPSHOT_VERIFY");
}

TEST(SerializationTest, LoadRejectsBadMagic) {
  const auto words = Words(20, 7500);
  PrototypeStore store(words);
  TempFile file("bad_magic");
  store.SaveBinary(file.path());
  auto bytes = ReadAll(file.path());
  bytes[0] = 'X';
  WriteAllRestamped(file.path(), bytes);
  EXPECT_THROW(PrototypeStore::LoadBinary(file.path()), std::runtime_error);
}

TEST(SerializationTest, LoadRejectsVersionMismatch) {
  const auto words = Words(20, 7600);
  PrototypeStore store(words);
  Laesa laesa(store, MakeDistance("dE"), 4);
  TempFile file("version");
  laesa.Save(file.path());
  auto bytes = ReadAll(file.path());
  bytes[8] = 99;  // bump the version field
  WriteAllRestamped(file.path(), bytes);
  try {
    (void)Laesa::Load(file.path(), store, MakeDistance("dE"));
    FAIL() << "expected version mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(SerializationTest, LoadRejectsTruncatedFile) {
  const auto words = Words(40, 7700);
  PrototypeStore store(words);
  Laesa laesa(store, MakeDistance("dE"), 6);
  {
    TempFile file("trunc_laesa");
    laesa.Save(file.path());
    auto bytes = ReadAll(file.path());
    bytes.resize(bytes.size() / 2);
    WriteAllRestamped(file.path(), bytes);
    EXPECT_THROW(Laesa::Load(file.path(), store, MakeDistance("dE")),
                 std::runtime_error);
  }
  {
    TempFile file("trunc_store");
    store.SaveBinary(file.path());
    auto bytes = ReadAll(file.path());
    bytes.resize(bytes.size() - 2 * kBinaryAlignment - 16);
    WriteAllRestamped(file.path(), bytes);
    EXPECT_THROW(PrototypeStore::LoadBinary(file.path()), std::runtime_error);
  }
  {
    ShardedPrototypeStore sharded(words, 3);
    ShardedLaesa index(sharded, MakeDistance("dE"), 4);
    TempFile file("trunc_sharded");
    index.Save(file.path());
    auto bytes = ReadAll(file.path());
    bytes.resize(bytes.size() - 3 * kBinaryAlignment);
    WriteAllRestamped(file.path(), bytes);
    EXPECT_THROW(ShardedLaesa::Load(file.path(), sharded, MakeDistance("dE")),
                 std::runtime_error);
  }
}

TEST(SerializationTest, LoadRejectsMismatchedStoreShape) {
  const auto words = Words(30, 7800);
  PrototypeStore store(words);
  Laesa laesa(store, MakeDistance("dE"), 4);
  TempFile file("shape");
  laesa.Save(file.path());
  PrototypeStore smaller(
      std::vector<std::string>(words.begin(), words.end() - 1));
  EXPECT_THROW(Laesa::Load(file.path(), smaller, MakeDistance("dE")),
               std::runtime_error);

  ShardedPrototypeStore sharded(words, 3);
  ShardedLaesa index(sharded, MakeDistance("dE"), 4);
  TempFile sharded_file("sharded_shape");
  index.Save(sharded_file.path());
  ShardedPrototypeStore other_shape(words, 5);
  EXPECT_THROW(
      ShardedLaesa::Load(sharded_file.path(), other_shape, MakeDistance("dE")),
      std::runtime_error);
}

TEST(SerializationTest, LoadRejectsCorruptHeaderCounts) {
  // A flipped count field must fail as a runtime_error ("truncated"), not
  // size a multi-exabyte allocation (std::bad_alloc / OOM kill).
  const auto words = Words(20, 7900);
  PrototypeStore store(words);
  TempFile file("corrupt_count");
  store.SaveBinary(file.path());
  auto bytes = ReadAll(file.path());
  for (std::size_t b = 16; b < 24; ++b) bytes[b] = static_cast<char>(0xFF);
  WriteAllRestamped(file.path(), bytes);
  EXPECT_THROW(PrototypeStore::LoadBinary(file.path()), std::runtime_error);

  ShardedPrototypeStore sharded(words, 2);
  TempFile sharded_file("corrupt_shard_count");
  sharded.SaveBinary(sharded_file.path());
  auto sharded_bytes = ReadAll(sharded_file.path());
  for (std::size_t b = 16; b < 24; ++b) {
    sharded_bytes[b] = static_cast<char>(0xFF);
  }
  WriteAllRestamped(sharded_file.path(), sharded_bytes);
  EXPECT_THROW(ShardedPrototypeStore::LoadBinary(sharded_file.path()),
               std::runtime_error);
}

TEST(SerializationTest, LoadRejectsMissingFile) {
  EXPECT_THROW(PrototypeStore::LoadBinary("/nonexistent/cned.bin"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Mapped (zero-copy) loading: the same corruption classes must fail cleanly
// — std::runtime_error, never a pointer formed past the end of the mapping.
// The ASan+UBSan CI job runs these, so any out-of-bounds read the checks
// miss becomes a hard failure there.
// ---------------------------------------------------------------------------

TEST(SerializationTest, MapRejectsMissingEmptyAndBadMagicFiles) {
  EXPECT_THROW(PrototypeStore::Map("/nonexistent/cned.bin"),
               std::runtime_error);

  TempFile empty("map_empty");
  WriteAll(empty.path(), {});
  EXPECT_THROW(PrototypeStore::Map(empty.path()), std::runtime_error);

  const auto words = Words(20, 8100);
  PrototypeStore store(words);
  TempFile file("map_bad_magic");
  store.SaveBinary(file.path());
  auto bytes = ReadAll(file.path());
  bytes[0] = 'X';
  WriteAllRestamped(file.path(), bytes);
  EXPECT_THROW(PrototypeStore::Map(file.path()), std::runtime_error);

  bytes = ReadAll(file.path());
  bytes[0] = 'C';
  bytes[8] = 99;  // version field
  WriteAllRestamped(file.path(), bytes);
  try {
    (void)PrototypeStore::Map(file.path());
    FAIL() << "expected version mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(SerializationTest, MapRejectsTruncatedTail) {
  const auto words = Words(40, 8200);
  PrototypeStore store(words);
  {
    TempFile file("map_trunc_store");
    store.SaveBinary(file.path());
    auto bytes = ReadAll(file.path());
    bytes.resize(bytes.size() / 2);
    WriteAllRestamped(file.path(), bytes);
    EXPECT_THROW(PrototypeStore::Map(file.path()), std::runtime_error);
  }
  {
    Laesa laesa(store, MakeDistance("dE"), 6);
    TempFile file("map_trunc_laesa");
    laesa.Save(file.path());
    auto bytes = ReadAll(file.path());
    bytes.resize(bytes.size() - 2 * kBinaryAlignment - 24);
    WriteAllRestamped(file.path(), bytes);
    EXPECT_THROW(Laesa::Map(file.path(), store, MakeDistance("dE")),
                 std::runtime_error);
  }
  {
    ShardedPrototypeStore sharded(words, 3);
    ShardedLaesa index(sharded, MakeDistance("dE"), 4);
    TempFile store_file("map_trunc_sstore");
    TempFile index_file("map_trunc_slaesa");
    sharded.SaveBinary(store_file.path());
    index.Save(index_file.path());
    auto bytes = ReadAll(store_file.path());
    bytes.resize(bytes.size() * 2 / 3);
    WriteAllRestamped(store_file.path(), bytes);
    EXPECT_THROW(ShardedPrototypeStore::Map(store_file.path()),
                 std::runtime_error);
    bytes = ReadAll(index_file.path());
    bytes.resize(bytes.size() - 3 * kBinaryAlignment);
    WriteAllRestamped(index_file.path(), bytes);
    EXPECT_THROW(ShardedLaesa::Map(index_file.path(), sharded,
                                   MakeDistance("dE")),
                 std::runtime_error);
  }
}

TEST(SerializationTest, MapRejectsSectionStartBeyondFileEnd) {
  // Cut the file inside the zero padding ahead of a section: the section's
  // 64-byte-aligned start then lies past EOF ("misaligned section offset" —
  // no aligned view can be formed), which must fail as truncation.
  const auto words = Words(20, 8300);
  PrototypeStore store(words);
  TempFile file("map_pad_cut");
  store.SaveBinary(file.path());
  auto bytes = ReadAll(file.path());
  // Layout: 64B header, offsets (20 x 4 = 80B) ending at 144, padding to
  // 192, lengths... Cutting at 150 leaves the cursor mid-padding.
  ASSERT_GT(bytes.size(), 192u);
  bytes.resize(150);
  WriteAllRestamped(file.path(), bytes);
  EXPECT_THROW(PrototypeStore::Map(file.path()), std::runtime_error);
}

TEST(SerializationTest, MapRejectsSectionLengthOverflowingFileSize) {
  const auto words = Words(20, 8400);
  PrototypeStore store(words);
  {
    // Arena count inflated past the file size (but under the 32-bit cap, so
    // it reaches the extent check): must throw before any view is formed.
    TempFile file("map_arena_overflow");
    store.SaveBinary(file.path());
    auto bytes = ReadAll(file.path());
    const std::uint64_t huge_arena = 0x7FFFFFFF;
    std::memcpy(bytes.data() + 24, &huge_arena, sizeof(huge_arena));
    WriteAllRestamped(file.path(), bytes);
    EXPECT_THROW(PrototypeStore::Map(file.path()), std::runtime_error);
  }
  {
    // A count of 2^64-1 must fail as truncation, not overflow into a tiny
    // extent that "fits".
    TempFile file("map_count_overflow");
    store.SaveBinary(file.path());
    auto bytes = ReadAll(file.path());
    for (std::size_t b = 16; b < 24; ++b) bytes[b] = static_cast<char>(0xFF);
    WriteAllRestamped(file.path(), bytes);
    EXPECT_THROW(PrototypeStore::Map(file.path()), std::runtime_error);
  }
  {
    ShardedPrototypeStore sharded(words, 2);
    TempFile file("map_shard_count_overflow");
    sharded.SaveBinary(file.path());
    auto bytes = ReadAll(file.path());
    for (std::size_t b = 16; b < 24; ++b) bytes[b] = static_cast<char>(0xFF);
    WriteAllRestamped(file.path(), bytes);
    EXPECT_THROW(ShardedPrototypeStore::Map(file.path()), std::runtime_error);
  }
}

TEST(SerializationTest, MapRejectsOffsetsOutsideArena) {
  // A corrupt offset/length pair pointing past the arena must be caught at
  // map time — view(i) has no per-access bounds check by design.
  const auto words = Words(20, 8500);
  PrototypeStore store(words);
  TempFile file("map_bad_offset");
  store.SaveBinary(file.path());
  auto bytes = ReadAll(file.path());
  const std::uint32_t huge_offset = 0x40000000;
  std::memcpy(bytes.data() + kBinaryAlignment + 4, &huge_offset,
              sizeof(huge_offset));  // offsets[1]
  WriteAllRestamped(file.path(), bytes);
  EXPECT_THROW(PrototypeStore::Map(file.path()), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Quantized pivot tables (format version 2): round-trips at every precision
// across every registered distance, plus the corruption classes specific to
// the new sections. Within one precision the copy-loaded and the mapped
// index must be bit-identical to the built index — results AND stats.
// ---------------------------------------------------------------------------

constexpr TablePrecision kQuantPrecisions[] = {
    TablePrecision::kF32, TablePrecision::kF16, TablePrecision::kU8};

TEST(SerializationTest, QuantizedLaesaRoundTripAcrossAllDistances) {
  const auto words = Words(60, 7210);
  PrototypeStore store(words);
  Rng rng(7211);
  const auto queries = MakeQueries(words, 8, 2, Alphabet::Latin(), rng);
  for (TablePrecision prec : kQuantPrecisions) {
    for (const auto& name : AllDistanceNames()) {
      auto dist = MakeDistance(name);
      Laesa original(store, dist, 6, /*first_pivot=*/0, prec);
      const std::string tag =
          std::string(TablePrecisionName(prec)) + "/" + name;
      TempFile file("laesa_quant");
      original.Save(file.path());
      Laesa loaded = Laesa::Load(file.path(), store, dist);
      Laesa mapped = Laesa::Map(file.path(), store, dist);
      EXPECT_EQ(loaded.table_precision(), prec) << tag;
      EXPECT_EQ(mapped.table_precision(), prec) << tag;
      EXPECT_EQ(loaded.pivots(), original.pivots()) << tag;
      for (const auto& q : queries) {
        QueryStats sa, sb, sc;
        const NeighborResult a = original.Nearest(q, &sa);
        const NeighborResult b = loaded.Nearest(q, &sb);
        const NeighborResult c = mapped.Nearest(q, &sc);
        EXPECT_EQ(a.index, b.index) << tag << " q=" << q;
        EXPECT_EQ(a.distance, b.distance) << tag << " q=" << q;
        EXPECT_TRUE(sa == sb) << tag << " q=" << q;
        EXPECT_EQ(a.index, c.index) << tag << " q=" << q;
        EXPECT_EQ(a.distance, c.distance) << tag << " q=" << q;
        EXPECT_TRUE(sa == sc) << tag << " q=" << q;
      }
    }
  }
}

TEST(SerializationTest, QuantizedShardedRoundTripAcrossAllDistances) {
  const auto words = Words(60, 7310);
  ShardedPrototypeStore store(words, 4);
  Rng rng(7311);
  const auto queries = MakeQueries(words, 6, 2, Alphabet::Latin(), rng);
  for (TablePrecision prec : kQuantPrecisions) {
    for (const auto& name : AllDistanceNames()) {
      auto dist = MakeDistance(name);
      ShardedLaesa original(store, dist, 5, /*first_pivot=*/0, prec);
      const std::string tag =
          std::string(TablePrecisionName(prec)) + "/" + name;
      TempFile file("sharded_quant");
      original.Save(file.path());
      ShardedLaesa loaded = ShardedLaesa::Load(file.path(), store, dist);
      ShardedLaesa mapped = ShardedLaesa::Map(file.path(), store, dist);
      EXPECT_EQ(loaded.table_precision(), prec) << tag;
      EXPECT_EQ(mapped.table_precision(), prec) << tag;
      for (const auto& q : queries) {
        QueryStats sa, sb, sc;
        const NeighborResult a = original.Nearest(q, &sa);
        const NeighborResult b = loaded.Nearest(q, &sb);
        const NeighborResult c = mapped.Nearest(q, &sc);
        EXPECT_EQ(a.index, b.index) << tag << " q=" << q;
        EXPECT_EQ(a.distance, b.distance) << tag << " q=" << q;
        EXPECT_TRUE(sa == sb) << tag << " q=" << q;
        EXPECT_EQ(a.index, c.index) << tag << " q=" << q;
        EXPECT_EQ(a.distance, c.distance) << tag << " q=" << q;
        EXPECT_TRUE(sa == sc) << tag << " q=" << q;
      }
    }
  }
}

TEST(SerializationTest, QuantizedFilesAreVersion2AndF64StaysVersion1) {
  const auto words = Words(30, 7410);
  PrototypeStore store(words);
  auto dist = MakeDistance("dE");
  {
    Laesa f64(store, dist, 4, /*first_pivot=*/0, TablePrecision::kF64);
    TempFile file("ver_f64");
    f64.Save(file.path());
    const auto bytes = ReadAll(file.path());
    EXPECT_EQ(bytes[8], 1);  // f64 keeps the v1 on-disk format untouched
  }
  {
    Laesa u8(store, dist, 4, /*first_pivot=*/0, TablePrecision::kU8);
    TempFile file("ver_u8");
    u8.Save(file.path());
    const auto bytes = ReadAll(file.path());
    EXPECT_EQ(bytes[8], 2);
    // counts[2] carries the precision tag.
    std::uint64_t prec = 0;
    std::memcpy(&prec, bytes.data() + 16 + 2 * sizeof(std::uint64_t),
                sizeof(prec));
    EXPECT_EQ(prec, static_cast<std::uint64_t>(TablePrecision::kU8));
  }
}

TEST(SerializationTest, QuantizedLoadRejectsCorruptPrecisionAndTruncation) {
  const auto words = Words(40, 7510);
  PrototypeStore store(words);
  auto dist = MakeDistance("dE");
  Laesa u8(store, dist, 6, /*first_pivot=*/0, TablePrecision::kU8);
  {
    // Precision tag outside {f32, f16, u8}: must be rejected as malformed,
    // both copying and mapped.
    TempFile file("quant_bad_prec");
    u8.Save(file.path());
    auto bytes = ReadAll(file.path());
    const std::uint64_t bogus = 7;
    std::memcpy(bytes.data() + 16 + 2 * sizeof(std::uint64_t), &bogus,
                sizeof(bogus));
    WriteAllRestamped(file.path(), bytes);
    EXPECT_THROW(Laesa::Load(file.path(), store, dist), std::runtime_error);
    EXPECT_THROW(Laesa::Map(file.path(), store, dist), std::runtime_error);
  }
  {
    // Truncation inside the code section: the element width is 1, so the
    // cut lands mid-table and both loaders must fail as truncation.
    TempFile file("quant_trunc");
    u8.Save(file.path());
    auto bytes = ReadAll(file.path());
    bytes.resize(bytes.size() - 2 * kBinaryAlignment);
    WriteAllRestamped(file.path(), bytes);
    EXPECT_THROW(Laesa::Load(file.path(), store, dist), std::runtime_error);
    EXPECT_THROW(Laesa::Map(file.path(), store, dist), std::runtime_error);
  }
  {
    // A bit flip in the quantized code section fails the checksum in the
    // copying loader — codes are opaque bytes, no structural check notices.
    TempFile file("quant_bitflip");
    u8.Save(file.path());
    auto bytes = ReadAll(file.path());
    bytes[bytes.size() - kBinaryAlignment - 1] ^= 0x04;
    WriteAll(file.path(), bytes);
    try {
      (void)Laesa::Load(file.path(), store, dist);
      FAIL() << "expected checksum mismatch";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
    }
  }
  {
    // Future version: the range-form header must still name "version".
    TempFile file("quant_version");
    u8.Save(file.path());
    auto bytes = ReadAll(file.path());
    bytes[8] = 99;
    WriteAllRestamped(file.path(), bytes);
    try {
      (void)Laesa::Load(file.path(), store, dist);
      FAIL() << "expected version mismatch";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
  }
  {
    // Same truncation class for the sharded v2 format.
    ShardedPrototypeStore sharded(words, 3);
    ShardedLaesa index(sharded, dist, 4, /*first_pivot=*/0,
                       TablePrecision::kF16);
    TempFile file("quant_sharded_trunc");
    index.Save(file.path());
    auto bytes = ReadAll(file.path());
    bytes.resize(bytes.size() - 2 * kBinaryAlignment);
    WriteAllRestamped(file.path(), bytes);
    EXPECT_THROW(ShardedLaesa::Load(file.path(), sharded, dist),
                 std::runtime_error);
    EXPECT_THROW(ShardedLaesa::Map(file.path(), sharded, dist),
                 std::runtime_error);
  }
}

TEST(SerializationTest, MapRejectsMismatchedStoreShape) {
  const auto words = Words(30, 8600);
  PrototypeStore store(words);
  Laesa laesa(store, MakeDistance("dE"), 4);
  TempFile file("map_shape");
  laesa.Save(file.path());
  PrototypeStore smaller(
      std::vector<std::string>(words.begin(), words.end() - 1));
  EXPECT_THROW(Laesa::Map(file.path(), smaller, MakeDistance("dE")),
               std::runtime_error);

  ShardedPrototypeStore sharded(words, 3);
  ShardedLaesa index(sharded, MakeDistance("dE"), 4);
  TempFile sharded_file("map_sharded_shape");
  index.Save(sharded_file.path());
  ShardedPrototypeStore other_shape(words, 5);
  EXPECT_THROW(
      ShardedLaesa::Map(sharded_file.path(), other_shape, MakeDistance("dE")),
      std::runtime_error);
}

}  // namespace
}  // namespace cned
