#include "core/contextual.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/contextual_heuristic.h"
#include "distances/levenshtein.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(ContextualPathCostTest, PaperExample4Decomposition) {
  // ababa -> baab via 1 insertion, 0 substitutions, 2 deletions (k=3):
  // 1/6 + (1/5 + 1/6) = 8/15.
  HarmonicTable h;
  EXPECT_NEAR(ContextualPathCost(5, 4, 3, 1, h), 8.0 / 15.0, 1e-12);
  EXPECT_EQ(ContextualPathCostExact(5, 4, 3, 1), Rational(8, 15));
}

TEST(ContextualPathCostTest, PaperExample4FirstPath) {
  // The paper's first path ababa ->d abaa ->d baa ->i baab costs
  // 1/5 + 1/4 + 1/4 = 7/10; as a canonical decomposition this is k=3 with
  // ni=1 but executed suboptimally — the formula gives the *optimal*
  // ordering 8/15, which is cheaper, as the paper observes.
  HarmonicTable h;
  EXPECT_LT(ContextualPathCost(5, 4, 3, 1, h), 7.0 / 10.0);
}

TEST(ContextualPathCostTest, PureDeletionsAreHarmonicTail) {
  // x (m=4) -> empty: k=4, ni=0: deletions cost 1/4+1/3+1/2+1 = H(4).
  HarmonicTable h;
  EXPECT_NEAR(ContextualPathCost(4, 0, 4, 0, h), h.H(4), 1e-12);
}

TEST(ContextualPathCostTest, PureInsertionsAreHarmonicTail) {
  // empty -> y (n=3): k=3, ni=3: insertions cost 1 + 1/2 + 1/3 = H(3).
  HarmonicTable h;
  EXPECT_NEAR(ContextualPathCost(0, 3, 3, 3, h), h.H(3), 1e-12);
}

TEST(ContextualPathCostTest, SubstitutionsAtPeakLength) {
  // m=n=4, k=2, ni=0: two substitutions on a length-4 string: 2/4.
  HarmonicTable h;
  EXPECT_NEAR(ContextualPathCost(4, 4, 2, 0, h), 0.5, 1e-12);
}

TEST(ContextualPathCostTest, InvalidDecompositionsThrow) {
  HarmonicTable h;
  // ni + nd > k.
  EXPECT_THROW(ContextualPathCost(5, 4, 1, 1, h), std::invalid_argument);
  // negative deletions: m + ni < n.
  EXPECT_THROW(ContextualPathCost(1, 5, 2, 1, h), std::invalid_argument);
  EXPECT_THROW(ContextualPathCostExact(5, 4, 1, 1), std::invalid_argument);
}

TEST(ContextualPathCostTest, Lemma1MoreInsertionsNeverHurtFixedK) {
  // For fixed edit length k the canonical cost is non-increasing in the
  // number of insertions (the paper's Lemma 1: use strings as long as
  // possible). Sweep all valid (m, n, k, ni).
  HarmonicTable h;
  for (std::size_t m = 0; m <= 10; ++m) {
    for (std::size_t n = 0; n <= 10; ++n) {
      for (std::size_t k = (m > n ? m - n : n - m); k <= m + n; ++k) {
        double prev = -1.0;
        bool first = true;
        for (std::size_t ni = (n > m ? n - m : 0); ni + (m + ni - n) <= k;
             ++ni) {
          double c = ContextualPathCost(m, n, k, ni, h);
          if (!first) {
            EXPECT_LE(c, prev + 1e-12)
                << "m=" << m << " n=" << n << " k=" << k << " ni=" << ni;
          }
          prev = c;
          first = false;
        }
      }
    }
  }
}

TEST(MaxInsertionProfileTest, IdenticalStrings) {
  auto p = MaxInsertionProfile("abc", "abc");
  ASSERT_EQ(p.size(), 7u);
  EXPECT_EQ(p[0], 0);  // zero ops, zero insertions
}

TEST(MaxInsertionProfileTest, EmptyToNonEmpty) {
  auto p = MaxInsertionProfile("", "abc");
  ASSERT_EQ(p.size(), 4u);
  EXPECT_LT(p[0], 0);
  EXPECT_LT(p[1], 0);
  EXPECT_LT(p[2], 0);
  EXPECT_EQ(p[3], 3);  // exactly 3 insertions
}

TEST(MaxInsertionProfileTest, NonEmptyToEmpty) {
  auto p = MaxInsertionProfile("ab", "");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[2], 0);  // two deletions, no insertions
  EXPECT_LT(p[1], 0);
}

TEST(MaxInsertionProfileTest, MismatchExampleProfile) {
  // x = abc, y = dea share only x[0]=='a'=='y[2]', matchable only as a
  // corner pair. Derivation in contextual_heuristic_test.cc.
  auto p = MaxInsertionProfile("abc", "dea");
  ASSERT_EQ(p.size(), 7u);
  EXPECT_LT(p[0], 0);
  EXPECT_LT(p[1], 0);
  EXPECT_LT(p[2], 0);
  EXPECT_EQ(p[3], 0);  // three substitutions
  EXPECT_EQ(p[4], 2);  // ins d, ins e, del b, del c around the 'a' match
  EXPECT_EQ(p[5], 2);
  EXPECT_EQ(p[6], 3);  // full rewrite
}

TEST(MaxInsertionProfileTest, FeasibleKsGiveConsistentDecompositions) {
  Rng rng(11);
  Alphabet ab("abc");
  for (int t = 0; t < 100; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 8);
    std::string y = StringGen::UniformLength(rng, ab, 0, 8);
    auto p = MaxInsertionProfile(x, y);
    std::size_t de = LevenshteinDistance(x, y);
    for (std::size_t k = 0; k < p.size(); ++k) {
      if (k < de) {
        EXPECT_LT(p[k], 0) << "x=" << x << " y=" << y << " k=" << k;
      }
      if (p[k] >= 0) {
        auto ni = static_cast<std::size_t>(p[k]);
        // nd and ns must be non-negative.
        EXPECT_GE(x.size() + ni, y.size());
        EXPECT_GE(k, ni + (x.size() + ni - y.size()));
        EXPECT_LE(ni, y.size());
      }
    }
    // k = dE is always feasible; k = m+n always feasible (full rewrite).
    EXPECT_GE(p[de], 0);
    EXPECT_EQ(p[x.size() + y.size()],
              static_cast<std::int32_t>(y.size()));
  }
}

TEST(ContextualDistanceTest, PaperExample4) {
  EXPECT_NEAR(ContextualDistance("ababa", "baab"), 8.0 / 15.0, 1e-12);
  EXPECT_EQ(ContextualDistanceExact("ababa", "baab"), Rational(8, 15));
}

TEST(ContextualDistanceTest, PaperExample4Detailed) {
  auto r = ContextualDistanceDetailed("ababa", "baab");
  EXPECT_EQ(r.k, 3u);
  EXPECT_EQ(r.insertions, 1u);
  EXPECT_EQ(r.substitutions, 0u);
  EXPECT_EQ(r.deletions, 2u);
}

TEST(ContextualDistanceTest, IdentityAndEmpty) {
  EXPECT_DOUBLE_EQ(ContextualDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(ContextualDistance("abc", "abc"), 0.0);
  HarmonicTable h;
  EXPECT_NEAR(ContextualDistance("abcd", ""), h.H(4), 1e-12);
  EXPECT_NEAR(ContextualDistance("", "abcd"), h.H(4), 1e-12);
}

TEST(ContextualDistanceTest, SymmetryOnRandomStrings) {
  Rng rng(12);
  Alphabet ab("abc");
  for (int t = 0; t < 150; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 10);
    std::string y = StringGen::UniformLength(rng, ab, 0, 10);
    EXPECT_NEAR(ContextualDistance(x, y), ContextualDistance(y, x), 1e-12)
        << "x=" << x << " y=" << y;
  }
}

TEST(ContextualDistanceTest, PositiveForDistinctStrings) {
  Rng rng(13);
  Alphabet ab("ab");
  for (int t = 0; t < 150; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 8);
    std::string y = StringGen::UniformLength(rng, ab, 0, 8);
    double d = ContextualDistance(x, y);
    if (x == y) {
      EXPECT_DOUBLE_EQ(d, 0.0);
    } else {
      EXPECT_GT(d, 0.0);
    }
  }
}

TEST(ContextualDistanceTest, NeverExceedsHeuristic) {
  // The exact distance minimises over all k including k = dE; the heuristic
  // evaluates only k = dE. Hence dC <= dC,h always.
  Rng rng(14);
  Alphabet ab("abcd");
  for (int t = 0; t < 200; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 12);
    std::string y = StringGen::UniformLength(rng, ab, 0, 12);
    EXPECT_LE(ContextualDistance(x, y),
              ContextualHeuristicDistance(x, y) + 1e-12)
        << "x=" << x << " y=" << y;
  }
}

TEST(ContextualDistanceTest, KnownMismatchWithHeuristic) {
  // x = abc, y = dea: the only match ('a') sits in opposite corners, so
  // every minimal (k=3) script is three substitutions (cost 1), while k=4
  // can insert d,e before and delete b,c after the matched 'a':
  // 1/4 + 1/5 + 1/5 + 1/4 = 9/10 < 1.
  EXPECT_EQ(ContextualDistanceExact("abc", "dea"), Rational(9, 10));
  EXPECT_NEAR(ContextualDistance("abc", "dea"), 0.9, 1e-12);
  EXPECT_NEAR(ContextualHeuristicDistance("abc", "dea"), 1.0, 1e-12);
  auto r = ContextualDistanceDetailed("abc", "dea");
  EXPECT_EQ(r.k, 4u);
  EXPECT_EQ(r.insertions, 2u);
}

TEST(ContextualDistanceTest, UpperBoundedByNaiveCanonicalPaths) {
  // dC is a min over paths, so any particular decomposition upper-bounds it.
  Rng rng(15);
  Alphabet ab("ab");
  HarmonicTable h;
  for (int t = 0; t < 100; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 8);
    std::string y = StringGen::UniformLength(rng, ab, 0, 8);
    double d = ContextualDistance(x, y);
    // Full-rewrite path: delete all of x, insert all of y... executed
    // optimally: insert all of y first, delete all of x.
    double rewrite = ContextualPathCost(x.size(), y.size(),
                                        x.size() + y.size(), y.size(), h);
    EXPECT_LE(d, rewrite + 1e-12);
  }
}

TEST(ContextualDistanceTest, BoundedAboveByHarmonicSandwich) {
  // The paper's well-definedness bound: dC(x,y) <= H(|x|+|y|) - H(|x|) +
  // H(|x|+|y|) - H(|y|) (the full-rewrite path cost).
  Rng rng(16);
  Alphabet ab("abc");
  HarmonicTable h;
  for (int t = 0; t < 100; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 10);
    std::string y = StringGen::UniformLength(rng, ab, 0, 10);
    double bound = 2 * h.H(x.size() + y.size()) - h.H(x.size()) - h.H(y.size());
    EXPECT_LE(ContextualDistance(x, y), bound + 1e-12);
  }
}

TEST(ContextualEditDistanceAdapterTest, Metadata) {
  ContextualEditDistance d;
  EXPECT_EQ(d.name(), "dC");
  EXPECT_TRUE(d.is_metric());
  EXPECT_NEAR(d.Distance("ababa", "baab"), 8.0 / 15.0, 1e-12);
}

}  // namespace
}  // namespace cned
