#include "core/contextual_reference.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/contextual.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(ContextualReferenceTest, TrivialCases) {
  Alphabet ab("ab");
  EXPECT_DOUBLE_EQ(ContextualReferenceDistance("", "", ab, 4), 0.0);
  EXPECT_DOUBLE_EQ(ContextualReferenceDistance("a", "a", ab), 0.0);
  // "" -> "a": single insertion into the empty string costs 1.
  EXPECT_DOUBLE_EQ(ContextualReferenceDistance("", "a", ab), 1.0);
  // "a" -> "b": one substitution on a length-1 string costs 1... or longer
  // paths; Dijkstra must return the true minimum.
  EXPECT_LE(ContextualReferenceDistance("a", "b", ab), 1.0);
}

TEST(ContextualReferenceTest, PaperExample4) {
  Alphabet ab("ab");
  EXPECT_NEAR(ContextualReferenceDistance("ababa", "baab", ab), 8.0 / 15.0,
              1e-9);
}

TEST(ContextualReferenceTest, DpMatchesDijkstraExhaustively) {
  // Ground truth: the unrestricted Dijkstra over string space must agree
  // with Algorithm 1 on every pair of short binary strings. This validates
  // both Lemma 1 (canonical ordering) and Proposition 1 (internal ops
  // suffice) as implemented.
  Alphabet ab("ab");
  auto strings = StringGen::Enumerate(ab, 3);  // 15 strings
  for (const auto& x : strings) {
    for (const auto& y : strings) {
      double dp = ContextualDistance(x, y);
      double dij = ContextualReferenceDistance(x, y, ab);
      EXPECT_NEAR(dp, dij, 1e-9) << "x=\"" << x << "\" y=\"" << y << "\"";
    }
  }
}

TEST(ContextualReferenceTest, DpMatchesDijkstraRandomLonger) {
  Rng rng(41);
  Alphabet ab("ab");
  for (int t = 0; t < 25; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 5);
    std::string y = StringGen::UniformLength(rng, ab, 0, 5);
    EXPECT_NEAR(ContextualDistance(x, y),
                ContextualReferenceDistance(x, y, ab), 1e-9)
        << "x=" << x << " y=" << y;
  }
}

TEST(ContextualReferenceTest, ExtraAlphabetSymbolNeverHelps) {
  // Proposition 1: optimal paths only need internal operations, so symbols
  // outside x and y cannot lower the distance.
  Alphabet ab("ab"), abc("abc");
  Rng rng(42);
  for (int t = 0; t < 12; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 4);
    std::string y = StringGen::UniformLength(rng, ab, 0, 4);
    double d2 = ContextualReferenceDistance(x, y, ab);
    double d3 = ContextualReferenceDistance(x, y, abc);
    EXPECT_NEAR(d2, d3, 1e-9) << "x=" << x << " y=" << y;
  }
}

TEST(ContextualReferenceTest, LongerMaxLenNeverImproves) {
  // The paper's well-definedness argument: strings longer than |x|+|y|
  // never pay off. Compare max_len = |x|+|y| against a larger budget.
  Alphabet ab("ab");
  Rng rng(43);
  for (int t = 0; t < 8; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 1, 3);
    std::string y = StringGen::UniformLength(rng, ab, 1, 3);
    double tight = ContextualReferenceDistance(x, y, ab);
    double loose =
        ContextualReferenceDistance(x, y, ab, x.size() + y.size() + 2);
    EXPECT_NEAR(tight, loose, 1e-9) << "x=" << x << " y=" << y;
  }
}

TEST(ContextualReferenceTest, RejectsForeignStrings) {
  Alphabet ab("ab");
  EXPECT_THROW(ContextualReferenceDistance("ax", "b", ab),
               std::invalid_argument);
}

TEST(ContextualReferenceTest, RejectsTooSmallMaxLen) {
  Alphabet ab("ab");
  EXPECT_THROW(ContextualReferenceDistance("aaaa", "b", ab, /*max_len=*/2),
               std::invalid_argument);
}

}  // namespace
}  // namespace cned
