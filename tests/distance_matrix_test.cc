#include "metric/distance_matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "distances/registry.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(DistanceMatrixTest, MatchesDirectEvaluation) {
  Rng rng(801);
  Alphabet ab("abc");
  auto sample = StringGen::Batch(rng, ab, 25, 1, 10);
  auto dist = MakeDistance("dE");
  DistanceMatrix m(sample, *dist);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.At(i, i), 0.0);
    for (std::size_t j = 0; j < sample.size(); ++j) {
      EXPECT_DOUBLE_EQ(m.At(i, j), dist->Distance(sample[i], sample[j]))
          << i << "," << j;
      EXPECT_DOUBLE_EQ(m.At(i, j), m.At(j, i));
    }
  }
}

TEST(DistanceMatrixTest, ParallelAndSerialAgree) {
  Rng rng(802);
  Alphabet ab("ACGT");
  auto sample = StringGen::Batch(rng, ab, 40, 5, 40);
  auto dist = MakeDistance("dC,h");
  DistanceMatrix serial(sample, *dist, /*threads=*/1);
  DistanceMatrix parallel(sample, *dist, /*threads=*/4);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    for (std::size_t j = 0; j < sample.size(); ++j) {
      EXPECT_DOUBLE_EQ(serial.At(i, j), parallel.At(i, j));
    }
  }
}

TEST(DistanceMatrixTest, PairStatsCountsEachPairOnce) {
  Rng rng(803);
  Alphabet ab("ab");
  auto sample = StringGen::Batch(rng, ab, 12, 1, 6);
  DistanceMatrix m(sample, *MakeDistance("dE"));
  EXPECT_EQ(m.PairStats().count(), 12u * 11u / 2u);
}

TEST(DistanceMatrixTest, IntrinsicDimensionMatchesManual) {
  Rng rng(804);
  Alphabet ab("abcd");
  auto sample = StringGen::Batch(rng, ab, 20, 2, 12);
  auto dist = MakeDistance("dYB");
  DistanceMatrix m(sample, *dist);
  RunningStats manual;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    for (std::size_t j = i + 1; j < sample.size(); ++j) {
      manual.Add(dist->Distance(sample[i], sample[j]));
    }
  }
  EXPECT_NEAR(m.IntrinsicDimension(), IntrinsicDimensionality(manual), 1e-9);
}

TEST(DistanceMatrixTest, FillHistogram) {
  Rng rng(805);
  Alphabet ab("ab");
  auto sample = StringGen::Batch(rng, ab, 10, 1, 8);
  DistanceMatrix m(sample, *MakeDistance("dmax"));
  Histogram h(0.0, 1.0, 10);
  m.FillHistogram(h);
  EXPECT_EQ(h.total(), 45u);
}

TEST(DistanceMatrixTest, RejectsTinySamples) {
  std::vector<std::string> one{"a"};
  EXPECT_THROW(DistanceMatrix(one, *MakeDistance("dE")),
               std::invalid_argument);
}

}  // namespace
}  // namespace cned
