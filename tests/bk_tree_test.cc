#include "search/bk_tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "distances/levenshtein.h"
#include "distances/registry.h"
#include "search/exhaustive.h"

namespace cned {
namespace {

std::vector<std::string> Dict(std::size_t n, std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = n;
  opt.seed = seed;
  return GenerateDictionary(opt).strings;
}

TEST(BkTreeTest, ExactNearestNeighbor) {
  auto protos = Dict(300, 601);
  Rng rng(602);
  auto queries = MakeQueries(protos, 60, 2, Alphabet::Latin(), rng);
  BkTree tree(protos, MakeDistance("dE"));
  ExhaustiveSearch exact(protos, MakeDistance("dE"));
  for (const auto& q : queries) {
    EXPECT_DOUBLE_EQ(tree.Nearest(q).distance, exact.Nearest(q).distance)
        << q;
  }
}

TEST(BkTreeTest, RangeSearchFindsAllWithinRadius) {
  auto protos = Dict(200, 603);
  Rng rng(604);
  auto queries = MakeQueries(protos, 20, 2, Alphabet::Latin(), rng);
  BkTree tree(protos, MakeDistance("dE"));
  for (const auto& q : queries) {
    for (std::size_t radius : {0u, 1u, 2u, 3u}) {
      auto hits = tree.RangeSearch(q, radius);
      // Oracle: brute-force range query. Note the BK-tree deduplicates
      // identical prototypes at build time, so compare distinct strings.
      std::set<std::string> expected, got;
      for (const auto& p : protos) {
        if (LevenshteinDistance(q, p) <= radius) expected.insert(p);
      }
      for (const auto& hit : hits) got.insert(protos[hit.index]);
      EXPECT_EQ(got, expected) << "q=" << q << " r=" << radius;
    }
  }
}

TEST(BkTreeTest, RangeResultsSortedAscending) {
  auto protos = Dict(150, 605);
  BkTree tree(protos, MakeDistance("dE"));
  auto hits = tree.RangeSearch(protos[0], 3);
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].distance, hits[i].distance);
  }
}

TEST(BkTreeTest, PrunesComputations) {
  auto protos = Dict(800, 606);
  Rng rng(607);
  auto queries = MakeQueries(protos, 40, 1, Alphabet::Latin(), rng);
  BkTree tree(protos, MakeDistance("dE"));
  BkTree::QueryStats stats;
  for (const auto& q : queries) tree.RangeSearch(q, 1, &stats);
  double avg = static_cast<double>(stats.distance_computations) /
               static_cast<double>(queries.size());
  EXPECT_LT(avg, static_cast<double>(protos.size()) * 0.7);
}

TEST(BkTreeTest, RejectsNonIntegerDistance) {
  std::vector<std::string> protos{"aa", "ab", "ba"};
  EXPECT_THROW(BkTree(protos, MakeDistance("dC,h")), std::invalid_argument);
}

TEST(BkTreeTest, EmptySetThrows) {
  std::vector<std::string> empty;
  EXPECT_THROW(BkTree(empty, MakeDistance("dE")), std::invalid_argument);
}

TEST(BkTreeTest, DuplicatesCollapse) {
  std::vector<std::string> dups{"casa", "casa", "cosa"};
  BkTree tree(dups, MakeDistance("dE"));
  auto hits = tree.RangeSearch("casa", 0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(dups[hits[0].index], "casa");
}

}  // namespace
}  // namespace cned
