#include "common/table.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace cned {
namespace {

TEST(TableTest, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TableTest, RejectsWrongCellCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(TableTest, DoubleRowFormatsWithPrecision) {
  Table t({"dist", "x", "y"});
  t.AddRow("dC", {1.23456, 0.5}, 2);
  std::string s = t.ToString();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("0.50"), std::string::npos);
}

TEST(TableTest, ColumnsAreAligned) {
  Table t({"h", "wide_header"});
  t.AddRow({"x", "1"});
  std::string s = t.ToString();
  // Separator line must cover the widest cell in each column.
  EXPECT_NE(s.find("|-"), std::string::npos);
  EXPECT_NE(s.find("-----------"), std::string::npos);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(0.5305, 4), "0.5305");
}

}  // namespace
}  // namespace cned
