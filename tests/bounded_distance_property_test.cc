// Property suite for the bounded-evaluation kernel engine: for EVERY
// registered distance, `DistanceBounded(x, y, b)` must equal `Distance(x, y)`
// whenever the true distance is < b, and must return some value >= b
// otherwise — over randomized string pairs and a spread of bounds (derived
// from the true distance, fixed constants, zero and infinity).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "distances/registry.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class BoundedDistanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  StringDistancePtr dist_ = MakeDistance(GetParam());
};

void CheckContract(const StringDistance& dist, const std::string& x,
                   const std::string& y, double bound) {
  const double exact = dist.Distance(x, y);
  const double bounded = dist.DistanceBounded(x, y, bound);
  if (exact < bound) {
    EXPECT_DOUBLE_EQ(bounded, exact)
        << dist.name() << " x=" << x << " y=" << y << " bound=" << bound;
  } else {
    EXPECT_GE(bounded, bound)
        << dist.name() << " x=" << x << " y=" << y << " bound=" << bound;
  }
}

TEST_P(BoundedDistanceTest, ExactBelowBoundAtLeastBoundAbove) {
  Rng rng(7001);
  Alphabet ab("abcd");
  for (int t = 0; t < 120; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 14);
    std::string y = StringGen::UniformLength(rng, ab, 0, 14);
    const double exact = dist_->Distance(x, y);
    // Bounds straddling the true value, including the value itself (where
    // the contract's two branches meet) and its floating-point neighbours.
    const std::vector<double> bounds = {
        0.0,
        exact * 0.25,
        exact * 0.5,
        std::nextafter(exact, -kInf),
        exact,
        std::nextafter(exact, kInf),
        exact * 1.5 + 0.01,
        exact + 1.0,
        kInf,
    };
    for (double b : bounds) CheckContract(*dist_, x, y, b);
  }
}

TEST_P(BoundedDistanceTest, SimilarStringsSmallBounds) {
  // The regime the indexes live in: near-duplicate strings and a tight
  // incumbent bound (this is where banded kernels abandon most).
  Rng rng(7002);
  Alphabet ab("abcdefgh");
  for (int t = 0; t < 60; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 6, 24);
    std::string y = x;
    for (int e = 0; e < 2 && !y.empty(); ++e) {
      y[rng.Index(y.size())] = ab.symbol(rng.Index(ab.size()));
    }
    for (double b : {0.01, 0.05, 0.2, 1.0, 3.0}) {
      CheckContract(*dist_, x, y, b);
    }
  }
}

TEST_P(BoundedDistanceTest, InfiniteBoundIsPlainDistance) {
  Rng rng(7003);
  Alphabet ab("ab");
  for (int t = 0; t < 40; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 10);
    std::string y = StringGen::UniformLength(rng, ab, 0, 10);
    EXPECT_DOUBLE_EQ(dist_->DistanceBounded(x, y, kInf),
                     dist_->Distance(x, y));
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistances, BoundedDistanceTest,
                         ::testing::ValuesIn(AllDistanceNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ',') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace cned
