#include "distances/weighted_levenshtein.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "distances/levenshtein.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(WeightedLevenshteinTest, UnitCostsMatchClassic) {
  UnitCosts unit;
  Rng rng(1);
  Alphabet ab("abc");
  for (int i = 0; i < 200; ++i) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 12);
    std::string y = StringGen::UniformLength(rng, ab, 0, 12);
    EXPECT_DOUBLE_EQ(WeightedLevenshtein(x, y, unit),
                     static_cast<double>(LevenshteinDistance(x, y)));
  }
}

TEST(WeightedLevenshteinTest, ExpensiveSubstitutionPrefersIndel) {
  // Substitution cost 3 > ins + del = 2, so "a" -> "b" should cost 2.
  MatrixCosts costs = MatrixCosts::Uniform(Alphabet("ab"), 3.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(WeightedLevenshtein("a", "b", costs), 2.0);
}

TEST(WeightedLevenshteinTest, CheapSubstitution) {
  MatrixCosts costs = MatrixCosts::Uniform(Alphabet("ab"), 0.25, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(WeightedLevenshtein("aa", "bb", costs), 0.5);
}

TEST(WeightedLevenshteinTest, PerSymbolIndelCosts) {
  Alphabet ab("ab");
  std::vector<std::vector<double>> sub{{0.0, 1.0}, {1.0, 0.0}};
  std::vector<double> ins{0.1, 5.0};  // inserting 'a' cheap, 'b' expensive
  std::vector<double> del{1.0, 1.0};
  MatrixCosts costs(ab, sub, ins, del);
  EXPECT_DOUBLE_EQ(WeightedLevenshtein("", "a", costs), 0.1);
  EXPECT_DOUBLE_EQ(WeightedLevenshtein("", "b", costs), 5.0);
  EXPECT_DOUBLE_EQ(WeightedLevenshtein("", "ab", costs), 5.1);
}

TEST(WeightedLevenshteinTest, AsymmetricCostsAreAsymmetric) {
  Alphabet ab("ab");
  std::vector<std::vector<double>> sub{{0.0, 1.0}, {1.0, 0.0}};
  std::vector<double> ins{0.1, 0.1};
  std::vector<double> del{2.0, 2.0};
  MatrixCosts costs(ab, sub, ins, del);
  // "" -> "a" uses insertion (0.1); "a" -> "" uses deletion (2.0).
  EXPECT_DOUBLE_EQ(WeightedLevenshtein("", "a", costs), 0.1);
  EXPECT_DOUBLE_EQ(WeightedLevenshtein("a", "", costs), 2.0);
}

TEST(WeightedLevenshteinTest, IdentityIsZero) {
  MatrixCosts costs = MatrixCosts::Uniform(Alphabet::Dna(), 2.0, 1.5, 1.5);
  EXPECT_DOUBLE_EQ(WeightedLevenshtein("GATTACA", "GATTACA", costs), 0.0);
}

TEST(MatrixCostsTest, ValidationRejectsBadShapes) {
  Alphabet ab("ab");
  std::vector<std::vector<double>> bad_diag{{1.0, 1.0}, {1.0, 0.0}};
  EXPECT_THROW(MatrixCosts(ab, bad_diag, {1, 1}, {1, 1}),
               std::invalid_argument);
  std::vector<std::vector<double>> not_square{{0.0}, {1.0, 0.0}};
  EXPECT_THROW(MatrixCosts(ab, not_square, {1, 1}, {1, 1}),
               std::invalid_argument);
  std::vector<std::vector<double>> ok{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_THROW(MatrixCosts(ab, ok, {1}, {1, 1}), std::invalid_argument);
}

TEST(MatrixCostsTest, FallbackForForeignSymbols) {
  MatrixCosts costs = MatrixCosts::Uniform(Alphabet("ab"), 0.5, 0.5, 0.5);
  EXPECT_DOUBLE_EQ(costs.Sub('a', 'z'), 1.0);  // default fallback
  EXPECT_DOUBLE_EQ(costs.Ins('z'), 1.0);
  EXPECT_DOUBLE_EQ(costs.Del('z'), 1.0);
  EXPECT_DOUBLE_EQ(costs.Sub('z', 'z'), 0.0);  // equality is free regardless
}

TEST(WeightedEditDistanceAdapterTest, WrapsCostModel) {
  auto costs = std::make_shared<UnitCosts>();
  WeightedEditDistance d(costs, "dW", true);
  EXPECT_EQ(d.name(), "dW");
  EXPECT_TRUE(d.is_metric());
  EXPECT_DOUBLE_EQ(d.Distance("kitten", "sitting"), 3.0);
}

}  // namespace
}  // namespace cned
