#include "core/contextual_heuristic.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/contextual.h"
#include "distances/levenshtein.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(ContextualHeuristicTest, AgreesOnPaperExample4) {
  EXPECT_NEAR(ContextualHeuristicDistance("ababa", "baab"), 8.0 / 15.0, 1e-12);
}

TEST(ContextualHeuristicTest, KEqualsEditDistance) {
  Rng rng(21);
  Alphabet ab("abc");
  for (int t = 0; t < 200; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 12);
    std::string y = StringGen::UniformLength(rng, ab, 0, 12);
    auto r = ContextualHeuristicDetailed(x, y);
    EXPECT_EQ(r.k, LevenshteinDistance(x, y)) << "x=" << x << " y=" << y;
  }
}

TEST(ContextualHeuristicTest, InsertionsMatchFullDpAtMinimalK) {
  // The 2-D (distance, max-insertions) DP must reproduce ni[m][n][dE] of
  // the full Algorithm 1 profile — see the prefix-minimality argument in
  // contextual_heuristic.cc.
  Rng rng(22);
  Alphabet ab("abcd");
  for (int t = 0; t < 200; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 10);
    std::string y = StringGen::UniformLength(rng, ab, 0, 10);
    auto r = ContextualHeuristicDetailed(x, y);
    auto profile = MaxInsertionProfile(x, y);
    ASSERT_GE(profile[r.k], 0);
    EXPECT_EQ(static_cast<std::int32_t>(r.insertions), profile[r.k])
        << "x=" << x << " y=" << y;
  }
}

TEST(ContextualHeuristicTest, UpperBoundsExact) {
  Rng rng(23);
  Alphabet ab("ab");
  for (int t = 0; t < 300; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 10);
    std::string y = StringGen::UniformLength(rng, ab, 0, 10);
    EXPECT_GE(ContextualHeuristicDistance(x, y) + 1e-12,
              ContextualDistance(x, y));
  }
}

TEST(ContextualHeuristicTest, KnownMismatchCase) {
  // See contextual_test.cc: dC(abc, dea) = 9/10 but the heuristic, locked
  // to k = dE = 3, reports 1.
  auto r = ContextualHeuristicDetailed("abc", "dea");
  EXPECT_EQ(r.k, 3u);
  EXPECT_EQ(r.insertions, 0u);
  EXPECT_NEAR(r.distance, 1.0, 1e-12);
  EXPECT_NEAR(ContextualDistance("abc", "dea"), 0.9, 1e-12);
}

TEST(ContextualHeuristicTest, HighAgreementRateOnRandomStrings) {
  // The paper reports ~90% agreement on its benchmarks; random strings are
  // *adversarial* for the heuristic (little shared structure), so we only
  // assert a substantial-majority agreement here. The benchmark
  // sec41_heuristic_agreement measures the rate on the paper-like datasets.
  Rng rng(24);
  Alphabet ab("abcd");
  int agree = 0;
  const int total = 300;
  for (int t = 0; t < total; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 12);
    std::string y = StringGen::UniformLength(rng, ab, 0, 12);
    double e = ContextualDistance(x, y);
    double h = ContextualHeuristicDistance(x, y);
    if (std::abs(e - h) < 1e-12) ++agree;
  }
  EXPECT_GT(agree, total / 2);
}

TEST(ContextualHeuristicTest, IdentityAndSymmetry) {
  Rng rng(25);
  Alphabet ab("abc");
  for (int t = 0; t < 150; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 12);
    std::string y = StringGen::UniformLength(rng, ab, 0, 12);
    EXPECT_DOUBLE_EQ(ContextualHeuristicDistance(x, x), 0.0);
    EXPECT_NEAR(ContextualHeuristicDistance(x, y),
                ContextualHeuristicDistance(y, x), 1e-12);
  }
}

TEST(ContextualHeuristicTest, EmptyStringCases) {
  HarmonicTable h;
  EXPECT_DOUBLE_EQ(ContextualHeuristicDistance("", ""), 0.0);
  EXPECT_NEAR(ContextualHeuristicDistance("", "abc"), h.H(3), 1e-12);
  EXPECT_NEAR(ContextualHeuristicDistance("abc", ""), h.H(3), 1e-12);
}

TEST(ContextualHeuristicTest, LongStringsStayCheap) {
  // O(mn) should handle thousands of symbols comfortably; also sanity-check
  // the value against simple bounds.
  std::string x(2000, 'a'), y(1900, 'a');
  y += std::string(100, 'b');
  double d = ContextualHeuristicDistance(x, y);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 2.0);  // contextual distances live in [0, ~2H range)
}

TEST(ContextualHeuristicAdapterTest, Metadata) {
  ContextualHeuristicEditDistance d;
  EXPECT_EQ(d.name(), "dC,h");
  EXPECT_FALSE(d.is_metric());
  EXPECT_NEAR(d.Distance("ababa", "baab"), 8.0 / 15.0, 1e-12);
}

}  // namespace
}  // namespace cned
