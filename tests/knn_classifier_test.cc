#include "search/knn_classifier.h"

#include <gtest/gtest.h>

#include "distances/registry.h"
#include "search/exhaustive.h"
#include "search/laesa.h"

namespace cned {
namespace {

// Two well-separated synthetic classes.
std::pair<std::vector<std::string>, std::vector<int>> TwoClasses() {
  std::vector<std::string> protos{"aaaa", "aaab", "abaa", "aaba",
                                  "zzzz", "zzzy", "zyzz", "zzyz"};
  std::vector<int> labels{0, 0, 0, 0, 1, 1, 1, 1};
  return {protos, labels};
}

TEST(KnnClassifierTest, PerfectOnSeparableData) {
  auto [protos, labels] = TwoClasses();
  ExhaustiveSearch search(protos, MakeDistance("dE"));
  NearestNeighborClassifier clf(search, labels);
  EXPECT_EQ(clf.Classify("aaaa"), 0);
  EXPECT_EQ(clf.Classify("aabb"), 0);
  EXPECT_EQ(clf.Classify("zzzz"), 1);
  EXPECT_EQ(clf.Classify("zyyz"), 1);
}

TEST(KnnClassifierTest, ErrorRatePercentComputed) {
  auto [protos, labels] = TwoClasses();
  ExhaustiveSearch search(protos, MakeDistance("dE"));
  NearestNeighborClassifier clf(search, labels);
  std::vector<std::string> queries{"aaaa", "zzzz", "aaab", "zzzy"};
  std::vector<int> truth{0, 1, 1, 0};  // two labels deliberately wrong
  EXPECT_DOUBLE_EQ(clf.ErrorRatePercent(queries, truth), 50.0);
}

TEST(KnnClassifierTest, WorksWithLaesaBackend) {
  auto [protos, labels] = TwoClasses();
  Laesa laesa(protos, MakeDistance("dE"), 3);
  NearestNeighborClassifier clf(laesa, labels);
  EXPECT_EQ(clf.Classify("aaba"), 0);
  EXPECT_EQ(clf.Classify("zzyy"), 1);
}

TEST(KnnClassifierTest, SizeMismatchThrows) {
  auto [protos, labels] = TwoClasses();
  labels.pop_back();
  ExhaustiveSearch search(protos, MakeDistance("dE"));
  EXPECT_THROW(NearestNeighborClassifier(search, labels),
               std::invalid_argument);
}

TEST(KnnClassifierTest, ErrorRateSizeMismatchThrows) {
  auto [protos, labels] = TwoClasses();
  ExhaustiveSearch search(protos, MakeDistance("dE"));
  NearestNeighborClassifier clf(search, labels);
  std::vector<std::string> queries{"a"};
  EXPECT_THROW(clf.ErrorRatePercent(queries, {0, 1}), std::invalid_argument);
}

TEST(KnnClassifyTest, MajorityVote) {
  std::vector<std::string> protos{"aaaa", "aaab", "aabb", "zzzz"};
  std::vector<int> labels{0, 0, 1, 1};
  ExhaustiveSearch search(protos, MakeDistance("dE"));
  // 3-NN of "aaaa": aaaa(0), aaab(0), aabb(1) -> majority 0.
  EXPECT_EQ(KnnClassify(search, labels, "aaaa", 3), 0);
  // 1-NN of "aabb" is itself -> 1.
  EXPECT_EQ(KnnClassify(search, labels, "aabb", 1), 1);
}

TEST(KnnClassifyTest, TieBreaksTowardCloserNeighbor) {
  std::vector<std::string> protos{"aaaa", "zzzz"};
  std::vector<int> labels{0, 1};
  ExhaustiveSearch search(protos, MakeDistance("dE"));
  // 2-NN is a 1-1 tie; the closer neighbour's label must win.
  EXPECT_EQ(KnnClassify(search, labels, "aaaz", 2), 0);
  EXPECT_EQ(KnnClassify(search, labels, "zzza", 2), 1);
}

}  // namespace
}  // namespace cned
