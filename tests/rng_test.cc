#include "common/rng.h"

#include <algorithm>
#include <stdexcept>

#include <gtest/gtest.h>

namespace cned {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, IndexInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(13), 13u);
  }
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(11);
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.Weighted(weights), 1u);
  }
}

TEST(RngTest, WeightedThrowsOnAllZero) {
  Rng rng(11);
  std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW(rng.Weighted(weights), std::invalid_argument);
}

TEST(RngTest, WeightedRoughlyProportional) {
  Rng rng(13);
  std::vector<double> weights{1.0, 3.0};
  int counts[2] = {0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Weighted(weights)];
  double frac = static_cast<double>(counts[1]) / n;
  EXPECT_NEAR(frac, 0.75, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto orig = v;
  rng.Shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, GaussianMeanApproximately) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(23);
  b.Fork();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.UniformInt(0, 1 << 30) == a.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace cned
