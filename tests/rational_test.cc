#include "common/rational.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace cned {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational r;
  EXPECT_EQ(r.numerator(), 0);
  EXPECT_EQ(r.denominator(), 1);
  EXPECT_DOUBLE_EQ(r.ToDouble(), 0.0);
}

TEST(RationalTest, ReducesToLowestTerms) {
  Rational r(6, 8);
  EXPECT_EQ(r.numerator(), 3);
  EXPECT_EQ(r.denominator(), 4);
}

TEST(RationalTest, NormalisesSignOntoNumerator) {
  Rational r(3, -4);
  EXPECT_EQ(r.numerator(), -3);
  EXPECT_EQ(r.denominator(), 4);
  Rational s(-3, -4);
  EXPECT_EQ(s.numerator(), 3);
  EXPECT_EQ(s.denominator(), 4);
}

TEST(RationalTest, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(RationalTest, Addition) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 5) + Rational(1, 5), Rational(2, 5));
}

TEST(RationalTest, Subtraction) {
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(1, 3) - Rational(1, 2), Rational(-1, 6));
}

TEST(RationalTest, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
}

TEST(RationalTest, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_THROW(Rational(1, 2) / Rational(0), std::invalid_argument);
}

TEST(RationalTest, Negation) { EXPECT_EQ(-Rational(1, 2), Rational(-1, 2)); }

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(1, 2), Rational(1, 2));
  EXPECT_GT(Rational(2, 3), Rational(1, 2));
  EXPECT_GE(Rational(2, 3), Rational(2, 3));
  EXPECT_LT(Rational(-1, 2), Rational(1, 3));
}

TEST(RationalTest, CompoundAssignment) {
  Rational r(1, 2);
  r += Rational(1, 3);
  EXPECT_EQ(r, Rational(5, 6));
  r -= Rational(1, 6);
  EXPECT_EQ(r, Rational(2, 3));
  r *= Rational(3, 2);
  EXPECT_EQ(r, Rational(1));
  r /= Rational(4);
  EXPECT_EQ(r, Rational(1, 4));
}

TEST(RationalTest, HarmonicRangeKnownValues) {
  // H(1..4) = 1 + 1/2 + 1/3 + 1/4 = 25/12.
  EXPECT_EQ(Rational::HarmonicRange(1, 4), Rational(25, 12));
  // sum_{i=5}^{6} 1/i = 1/5 + 1/6 = 11/30.
  EXPECT_EQ(Rational::HarmonicRange(5, 6), Rational(11, 30));
}

TEST(RationalTest, HarmonicRangeEmptyIsZero) {
  EXPECT_EQ(Rational::HarmonicRange(5, 4), Rational(0));
}

TEST(RationalTest, HarmonicRangeRejectsNonPositiveFrom) {
  EXPECT_THROW(Rational::HarmonicRange(0, 3), std::invalid_argument);
}

TEST(RationalTest, HarmonicRangeLargeStillFits) {
  // lcm(1..40) fits in int64; the sum must not overflow.
  Rational h = Rational::HarmonicRange(1, 40);
  EXPECT_NEAR(h.ToDouble(), 4.2785, 1e-3);
}

TEST(RationalTest, ToStringFormats) {
  EXPECT_EQ(Rational(3, 4).ToString(), "3/4");
  EXPECT_EQ(Rational(5).ToString(), "5");
  EXPECT_EQ(Rational(-1, 2).ToString(), "-1/2");
}

TEST(RationalTest, ToDoubleMatches) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).ToDouble(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(8, 15).ToDouble(), 8.0 / 15.0);
}

TEST(RationalTest, EqualityAfterReduction) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_NE(Rational(1, 2), Rational(1, 3));
}

}  // namespace
}  // namespace cned
