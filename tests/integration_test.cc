// End-to-end integration tests exercising the full experiment pipeline the
// benchmarks use: dataset generation -> distance -> LAESA / exhaustive ->
// classification / histograms / intrinsic dimensionality.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/digit_contours.h"
#include "datasets/dna_gen.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "metric/histogram.h"
#include "metric/stats.h"
#include "search/counting_distance.h"
#include "search/exhaustive.h"
#include "search/knn_classifier.h"
#include "search/laesa.h"

namespace cned {
namespace {

TEST(IntegrationTest, DictionaryLaesaPipelineMatchesExhaustive) {
  DictionaryOptions opt;
  opt.word_count = 300;
  opt.seed = 401;
  Dataset dict = GenerateDictionary(opt);

  Rng rng(402);
  auto queries = MakeQueries(dict.strings, 50, 2, Alphabet::Latin(), rng);

  auto counter = std::make_shared<CountingDistance>(MakeDistance("dE"));
  Laesa laesa(dict.strings, counter, 20);
  ExhaustiveSearch exact(dict.strings, MakeDistance("dE"));

  counter->Reset();
  for (const auto& q : queries) {
    auto a = laesa.Nearest(q);
    auto b = exact.Nearest(q);
    EXPECT_NEAR(a.distance, b.distance, 1e-12);
  }
  // The whole point of LAESA: far fewer query-time computations than
  // exhaustive (which would be 300 * 50).
  EXPECT_LT(counter->count(), 300u * 50u / 2u);
}

TEST(IntegrationTest, DigitClassificationBeatsChance) {
  DigitContourOptions opt;
  opt.per_class = 15;
  opt.seed = 403;
  Dataset train = GenerateDigitContours(opt);
  DigitContourOptions test_opt = opt;
  test_opt.seed = 404;  // different "scribes"
  Dataset test = GenerateDigitContours(test_opt);

  ExhaustiveSearch search(train.strings, MakeDistance("dC,h"));
  NearestNeighborClassifier clf(search, train.labels);
  double err = clf.ErrorRatePercent(test.strings, test.labels);
  // Chance level is 90% error; a meaningful contour representation should
  // do far better even at this small training size.
  EXPECT_LT(err, 55.0);
}

TEST(IntegrationTest, NormalisedDistanceImprovesDigitClassification) {
  // Table 2's qualitative claim: normalisation helps 1-NN on the
  // unnormalised digit contours. Compare dE against dC,h on one split.
  DigitContourOptions opt;
  opt.per_class = 20;
  opt.seed = 405;
  Dataset train = GenerateDigitContours(opt);
  DigitContourOptions test_opt = opt;
  test_opt.seed = 406;
  test_opt.per_class = 15;
  Dataset test = GenerateDigitContours(test_opt);

  ExhaustiveSearch s_e(train.strings, MakeDistance("dE"));
  ExhaustiveSearch s_c(train.strings, MakeDistance("dC,h"));
  double err_e = NearestNeighborClassifier(s_e, train.labels)
                     .ErrorRatePercent(test.strings, test.labels);
  double err_c = NearestNeighborClassifier(s_c, train.labels)
                     .ErrorRatePercent(test.strings, test.labels);
  // Allow slack — a single small split is noisy — but normalisation should
  // not be dramatically worse.
  EXPECT_LE(err_c, err_e + 10.0);
}

TEST(IntegrationTest, GenesIntrinsicDimensionalityOrdering) {
  // Table 1's qualitative shape on the genes dataset: the Levenshtein
  // distance has the least concentrated histogram (lowest rho); dYB the
  // most concentrated among the tested normalisations.
  DnaOptions opt;
  opt.sequence_count = 60;
  opt.family_count = 12;
  opt.seed = 407;
  Dataset genes = GenerateDnaGenes(opt);

  auto rho = [&](const char* name) {
    auto d = MakeDistance(name);
    RunningStats s;
    for (std::size_t i = 0; i < genes.size(); ++i) {
      for (std::size_t j = i + 1; j < genes.size(); ++j) {
        s.Add(d->Distance(genes.strings[i], genes.strings[j]));
      }
    }
    return IntrinsicDimensionality(s);
  };

  double rho_e = rho("dE");
  double rho_ch = rho("dC,h");
  double rho_yb = rho("dYB");
  EXPECT_LT(rho_e, rho_yb);
  EXPECT_LT(rho_ch, rho_yb);
}

TEST(IntegrationTest, HistogramPipelineProducesSeries) {
  DictionaryOptions opt;
  opt.word_count = 120;
  opt.seed = 408;
  Dataset dict = GenerateDictionary(opt);
  auto d = MakeDistance("dC,h");
  Histogram h(0.0, 2.0, 40);
  for (std::size_t i = 0; i < dict.size(); ++i) {
    for (std::size_t j = i + 1; j < std::min(dict.size(), i + 30); ++j) {
      h.Add(d->Distance(dict.strings[i], dict.strings[j]));
    }
  }
  EXPECT_GT(h.total(), 100u);
  EXPECT_FALSE(h.ToSeries().empty());
  EXPECT_NO_THROW(IntrinsicDimensionality(h.stats()));
}

}  // namespace
}  // namespace cned
