// Tests for the flat PrototypeStore arena: zero-copy views must reproduce
// the source strings exactly, the packed length array must stay aligned,
// and one store must be safely shareable across ParallelFor workers and
// multiple search indexes at once.

#include "datasets/prototype_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "search/exhaustive.h"
#include "search/laesa.h"

namespace cned {
namespace {

TEST(PrototypeStoreTest, RoundTripsStrings) {
  std::vector<std::string> strings{"", "a", "abc", "", "hello world",
                                   std::string(300, 'x')};
  PrototypeStore store(strings);
  ASSERT_EQ(store.size(), strings.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < strings.size(); ++i) {
    EXPECT_EQ(store.view(i), strings[i]) << i;
    EXPECT_EQ(store[i], strings[i]) << i;
    EXPECT_EQ(store.length(i), strings[i].size()) << i;
    EXPECT_EQ(store.lengths_data()[i], strings[i].size()) << i;
    total += strings[i].size();
  }
  EXPECT_EQ(store.arena_bytes(), total);
  EXPECT_EQ(store.ToStrings(), strings);
}

TEST(PrototypeStoreTest, IncrementalAdd) {
  PrototypeStore store;
  EXPECT_TRUE(store.empty());
  store.Reserve(3, 10);
  store.Add("one");
  store.Add("");
  store.Add("three");
  ASSERT_EQ(store.size(), 3u);
  EXPECT_EQ(store[0], "one");
  EXPECT_EQ(store[1], "");
  EXPECT_EQ(store[2], "three");
}

TEST(PrototypeStoreTest, ReserveRejectsOverCapArena) {
  // The arena stores 32-bit offsets, so a total past 2^32-1 bytes can
  // never be served. Add has always thrown at the cap; Reserve used to
  // happily allocate gigabytes for a store that could never legally fill
  // them. Both gates must agree — and the string-vector ctor's pre-sum
  // (now overflow-safe) funnels through the same check, so an over-cap
  // input fails up front instead of deep inside Add.
  const std::size_t cap = std::numeric_limits<std::uint32_t>::max();
  PrototypeStore store;
  EXPECT_THROW(store.Reserve(1, cap + std::size_t{1}), std::length_error);
  EXPECT_THROW(store.Reserve(4, cap * 2), std::length_error);
  // The happy path is untouched: a small reserve still works and the
  // store stays usable after a rejected one.
  EXPECT_NO_THROW(store.Reserve(1, 16));
  store.Add("still works");
  EXPECT_EQ(store[0], "still works");
}

TEST(PrototypeStoreTest, ArenaIsContiguousAndPacked) {
  PrototypeStore store(std::vector<std::string>{"abc", "de", "f"});
  EXPECT_EQ(std::string(store.arena_data(), store.arena_bytes()), "abcdef");
  // Views of consecutive strings are adjacent in the arena (zero padding).
  EXPECT_EQ(store.view(0).data() + store.view(0).size(),
            store.view(1).data());
}

TEST(PrototypeStoreRefTest, BorrowsAndOwns) {
  std::vector<std::string> strings{"alpha", "beta"};
  PrototypeStore store(strings);
  PrototypeStoreRef borrowed(store);
  EXPECT_EQ(&borrowed.get(), &store);  // zero-copy borrow

  PrototypeStoreRef owned(strings);  // packs a private copy
  EXPECT_NE(&owned.get(), &store);
  EXPECT_EQ(owned->size(), 2u);
  EXPECT_EQ((*owned)[1], "beta");

  // Copies of a ref share the same underlying store.
  PrototypeStoreRef copy = owned;
  EXPECT_EQ(&copy.get(), &owned.get());
}

TEST(PrototypeStoreStressTest, ParallelReadsAreConsistent) {
  // Many workers hammering one shared store must read exactly the same
  // bytes the sequential pass does — views are immutable after build.
  DictionaryOptions opt;
  opt.word_count = 400;
  opt.seed = 9001;
  auto strings = GenerateDictionary(opt).strings;
  PrototypeStore store(strings);

  auto dist = MakeDistance("dE");
  const std::size_t pairs = 2000;
  std::vector<double> expected(pairs);
  Rng rng(9002);
  std::vector<std::pair<std::size_t, std::size_t>> pair_idx(pairs);
  for (auto& [a, b] : pair_idx) {
    a = rng.Index(store.size());
    b = rng.Index(store.size());
  }
  for (std::size_t i = 0; i < pairs; ++i) {
    expected[i] =
        dist->Distance(store[pair_idx[i].first], store[pair_idx[i].second]);
  }

  std::atomic<std::size_t> mismatches{0};
  ParallelFor(pairs, [&](std::size_t i) {
    double d =
        dist->Distance(store[pair_idx[i].first], store[pair_idx[i].second]);
    if (d != expected[i]) mismatches.fetch_add(1);
    // Also verify the raw view against the owning copy.
    if (store[pair_idx[i].first] != strings[pair_idx[i].first]) {
      mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(PrototypeStoreStressTest, OneStoreSharedByManyIndexes) {
  // The production shape: a single arena feeding several indexes, queried
  // concurrently from ParallelFor workers (thread-local scratch only).
  DictionaryOptions opt;
  opt.word_count = 200;
  opt.seed = 9003;
  auto strings = GenerateDictionary(opt).strings;
  PrototypeStore store(strings);

  auto dist = MakeDistance("dE");
  Laesa laesa(store, dist, 12);
  ExhaustiveSearch exact(store, dist);

  Rng rng(9004);
  auto queries = MakeQueries(strings, 60, 2, Alphabet::Latin(), rng);
  std::vector<NeighborResult> sequential(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    sequential[i] = laesa.Nearest(queries[i]);
  }

  std::atomic<std::size_t> mismatches{0};
  ParallelFor(queries.size(), [&](std::size_t i) {
    auto l = laesa.Nearest(queries[i]);
    auto e = exact.Nearest(queries[i]);
    if (l.index != sequential[i].index ||
        l.distance != sequential[i].distance) {
      mismatches.fetch_add(1);
    }
    if (l.distance != e.distance) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace cned
