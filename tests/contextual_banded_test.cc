// The band-limited contextual kernel (|i - j| <= k cells per layer, layer
// cutoff, thread-local workspace) must agree exactly with the Rational
// reference path `ContextualDistanceExact` — the band only skips provably
// unreachable cells, so no optimal decomposition may be lost.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "core/contextual.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(ContextualBandedTest, AgreesWithRationalReferenceOnRandomPairs) {
  Rng rng(7101);
  Alphabet ab("abcd");
  for (int t = 0; t < 400; ++t) {
    // Keep |x|+|y| <= ~24 so the reduced fractions stay within 64 bits.
    std::string x = StringGen::UniformLength(rng, ab, 0, 12);
    std::string y = StringGen::UniformLength(rng, ab, 0, 12);
    if (x.empty() && y.empty()) continue;
    const double banded = ContextualDistanceDetailed(x, y).distance;
    const double exact = ContextualDistanceExact(x, y).ToDouble();
    EXPECT_NEAR(banded, exact, 1e-12) << "x=" << x << " y=" << y;
  }
}

TEST(ContextualBandedTest, AgreesOnAdversarialShapes) {
  // Shapes that stress the band edges: empty vs non-empty, disjoint
  // alphabets (every op needed), long shared prefixes, pure insertions.
  const std::pair<std::string, std::string> cases[] = {
      {"", "abcdef"},        {"abcdef", ""},
      {"aaaa", "bbbb"},      {"abcabcabc", "abc"},
      {"abc", "abcabcabc"},  {"aaaaaaaaaa", "aaaaaaaaab"},
      {"ab", "ba"},          {"abcd", "dcba"},
      {"aaaaabbbbb", "bbbbbaaaaa"},
  };
  for (const auto& [x, y] : cases) {
    const double banded = ContextualDistanceDetailed(x, y).distance;
    const double exact = ContextualDistanceExact(x, y).ToDouble();
    EXPECT_NEAR(banded, exact, 1e-12) << "x=" << x << " y=" << y;
  }
}

TEST(ContextualBandedTest, DecompositionMatchesProfileScan) {
  // The banded DP must also report the same optimal (k, ni) decomposition
  // as a scan over the full max-insertion profile.
  Rng rng(7102);
  Alphabet ab("abc");
  for (int t = 0; t < 200; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 10);
    std::string y = StringGen::UniformLength(rng, ab, 0, 10);
    if (x.empty() && y.empty()) continue;
    auto banded = ContextualDistanceDetailed(x, y);
    auto profile = MaxInsertionProfile(x, y);
    ASSERT_TRUE(banded.k < profile.size());
    EXPECT_EQ(profile[banded.k],
              static_cast<std::int32_t>(banded.insertions))
        << "x=" << x << " y=" << y;
  }
}

TEST(ContextualBandedTest, WorkspaceReuseAcrossShapes) {
  // Back-to-back evaluations with wildly different (m, n) shapes must not
  // leak state through the reused thread-local planes.
  Rng rng(7103);
  Alphabet ab("abcd");
  std::string big_x = StringGen::UniformLength(rng, ab, 60, 80);
  std::string big_y = StringGen::UniformLength(rng, ab, 60, 80);
  (void)ContextualDistanceDetailed(big_x, big_y);  // dirty the buffers
  for (int t = 0; t < 100; ++t) {
    std::string x = StringGen::UniformLength(rng, ab, 0, 10);
    std::string y = StringGen::UniformLength(rng, ab, 0, 10);
    if (x.empty() && y.empty()) continue;
    const double banded = ContextualDistanceDetailed(x, y).distance;
    const double exact = ContextualDistanceExact(x, y).ToDouble();
    EXPECT_NEAR(banded, exact, 1e-12) << "x=" << x << " y=" << y;
    if ((t & 7) == 0) {
      // Interleave a large evaluation to re-dirty the planes.
      (void)ContextualDistanceDetailed(big_x, x.empty() ? big_y : x);
    }
  }
}

TEST(ContextualBandedTest, BoundedCutoffSavesCellsAndStaysConsistent) {
  // A finite bound below the true distance must abandon (>= bound) while
  // evaluating strictly fewer DP cells than the unbounded run.
  std::string x(200, 'a');
  std::string y(200, 'b');  // distance requires many layers
  const double exact = ContextualDistanceDetailed(x, y).distance;

  ResetContextualCellsEvaluated();
  (void)ContextualDistanceDetailed(x, y);
  const std::uint64_t cells_unbounded = ContextualCellsEvaluated();

  ResetContextualCellsEvaluated();
  const double bounded = ContextualDistanceDetailed(x, y, exact * 0.25).distance;
  const std::uint64_t cells_bounded = ContextualCellsEvaluated();

  EXPECT_GE(bounded, exact * 0.25);
  EXPECT_LT(cells_bounded, cells_unbounded / 2);
}

}  // namespace
}  // namespace cned
