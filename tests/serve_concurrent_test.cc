// The concurrent serving tier's contract under real thread-level
// concurrency, pinned over forked worker processes:
//
//   1. Concurrent = bit-identical. Eight closed-loop client threads
//      hammering one ServeEngine — whose persistent driver multiplexes
//      all their sweeps over the shared worker connections — get answers
//      (neighbours, distances AND QueryStats) bit-identical to the
//      in-process ShardedLaesa pivot-row path, even while injected
//      faults kill and mangle standby replicas mid-query.
//   2. Mixed ops never flag while any replica survives. Concurrent
//      Nearest/KNearest/Insert/Remove (mutations force the robust
//      per-query path and make writers contend for the world lock the
//      driver holds shared) produce no partial, no shed, and no missing
//      shards, because every injected fault targets replica=1 only —
//      each group always keeps a live member.
//   3. The mutations land: after the storm quiesces, every inserted and
//      not-removed string is found at distance 0, and every removed one
//      is not.
//
// This test is wired into the ASan and TSan CI jobs: it is the one that
// races the admission queue, the sweep driver's world-lock hold, the
// per-group failover locks, and the connection reactor against each
// other.

#include <gtest/gtest.h>
#include <stdlib.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/registry.h"
#include "search/sharded_laesa.h"
#include "serve/engine.h"
#include "serve/router.h"
#include "serve/shard_snapshot.h"

namespace cned {
namespace {

constexpr std::size_t kThreads = 8;

struct Workload {
  std::vector<std::string> protos;
  std::vector<std::string> queries;
};

Workload MakeWorkload(std::size_t words, std::size_t queries,
                      std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = words;
  opt.seed = seed;
  Workload w;
  w.protos = GenerateDictionary(opt).strings;
  Rng rng(seed + 1);
  w.queries = MakeQueries(w.protos, queries, 2, Alphabet::Latin(), rng);
  return w;
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/cned_conc_XXXXXX";
    char* p = mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    if (!path.empty()) std::filesystem::remove_all(path);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

/// Results may interleave with concurrent mutations, so only invariants
/// hold: never flagged, never shed, sorted finite distances.
void ExpectWellFormed(const ServeResult& res, std::size_t k,
                      const std::string& context) {
  EXPECT_FALSE(res.shed) << context;
  EXPECT_FALSE(res.partial) << context;
  EXPECT_TRUE(res.missing_shards.empty()) << context;
  EXPECT_LE(res.neighbors.size(), k) << context;
  for (std::size_t i = 0; i < res.neighbors.size(); ++i) {
    EXPECT_TRUE(std::isfinite(res.neighbors[i].distance))
        << context << " i=" << i;
    if (i > 0) {
      EXPECT_GE(res.neighbors[i].distance, res.neighbors[i - 1].distance)
          << context << " i=" << i;
    }
  }
}

TEST(ServeConcurrentTest, EightClientsStayExactWhileStandbysDieAndMangle) {
  const Workload w = MakeWorkload(300, 16, 9100);
  ShardedPrototypeStore store(w.protos, 4);
  ShardedLaesa index(store, MakeDistance("dE"), 8, /*first_pivot=*/0);
  TempDir dir;
  SaveServingSnapshot(index, dir.path);

  ServeOptions opt;
  opt.distance = "dE";
  opt.replicas = 2;
  opt.op_timeout_ms = 2000;  // TSan headroom
  opt.op_retries = 2;
  opt.backoff_base_ms = 2;
  opt.auto_respawn = true;
  // Standbys only (replica=1): a crash mid-step, then a mangled step
  // reply (state-machine disagreement, standby evicted). Every group
  // keeps its primary, so nothing may ever flag — and nothing may
  // perturb a single reported bit.
  opt.fault_spec =
      "crash:shard=1,op=step,nth=25,replica=1|"
      "mangle:shard=2,op=step,nth=40,replica=1|"
      "crash:shard=0,op=step,nth=90,replica=1";
  ServeRouter router(dir.path, opt);

  ServeEngineOptions eopt;
  eopt.max_batch = 4;
  eopt.max_inflight = 2 * kThreads;
  eopt.max_queue = 256;
  eopt.admission_timeout_ms = 60000;  // exactness phase must never shed
  ServeEngine engine(router, eopt);

  // In-process references, computed up front (the row path, as the
  // engine's pivot stage computes it).
  const std::size_t k = 5;
  std::vector<std::vector<NeighborResult>> want(w.queries.size());
  std::vector<QueryStats> want_stats(w.queries.size());
  std::vector<double> row(index.pivot_count());
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    index.ComputePivotRow(w.queries[i], row.data(), &want_stats[i]);
    want[i] =
        index.KNearestWithPivotRow(w.queries[i], k, row.data(), &want_stats[i]);
  }

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i < w.queries.size(); ++i) {
          const std::size_t qi = (i + t * 3) % w.queries.size();
          const ServeResult got = engine.KNearest(w.queries[qi], k);
          bool same = !got.shed && !got.partial &&
                      got.missing_shards.empty() &&
                      got.neighbors.size() == want[qi].size() &&
                      got.stats == want_stats[qi];
          for (std::size_t j = 0; same && j < want[qi].size(); ++j) {
            same = got.neighbors[j].index == want[qi][j].index &&
                   got.neighbors[j].distance == want[qi][j].distance;
          }
          if (!same) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u)
      << "concurrent results diverged from in-process ShardedLaesa";
  EXPECT_GE(engine.batched_queries(), kThreads * 3 * w.queries.size());
  EXPECT_EQ(engine.shed_queries(), 0u);
}

TEST(ServeConcurrentTest, MixedQueryInsertRemoveStormNeverFlags) {
  const Workload w = MakeWorkload(300, 12, 9200);
  ShardedPrototypeStore store(w.protos, 4);
  ShardedLaesa index(store, MakeDistance("dE"), 8, /*first_pivot=*/0);
  TempDir dir;
  SaveServingSnapshot(index, dir.path);

  ServeOptions opt;
  opt.distance = "dE";
  opt.replicas = 2;
  opt.op_timeout_ms = 2000;
  opt.op_retries = 2;
  opt.backoff_base_ms = 2;
  opt.auto_respawn = true;
  // Standby-only churn while mutations fly: a crash, a mangle, and a
  // recurring slow primary eval (every 97th) to keep the hedging path
  // hot. Groups always keep a live member, so nothing may flag.
  opt.fault_spec =
      "crash:shard=3,op=step,nth=30,replica=1|"
      "mangle:shard=1,op=step,nth=55,replica=1|"
      "delay:shard=2,op=eval,replica=0,ms=30,every=97";
  ServeRouter router(dir.path, opt);

  ServeEngineOptions eopt;
  eopt.max_batch = 4;
  eopt.max_inflight = 2 * kThreads;
  eopt.max_queue = 256;
  eopt.admission_timeout_ms = 60000;
  ServeEngine engine(router, eopt);

  // Each thread interleaves queries with inserting its own unique
  // strings and removing every second one of them. Mutations take the
  // world lock exclusive — the announced-writer backoff in the sweep
  // driver is what keeps them from starving behind its shared hold.
  std::mutex failures_mu;
  std::vector<std::string> failures;
  std::vector<std::vector<std::pair<std::uint64_t, std::string>>> kept(
      kThreads);
  std::vector<std::vector<std::string>> removed(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < 10; ++i) {
        const std::string& q = w.queries[(t + i) % w.queries.size()];
        const std::size_t kk = (i % 2 == 0) ? 1 : 4;
        const ServeResult res = i % 2 == 0 ? engine.Nearest(q)
                                           : engine.KNearest(q, kk);
        {
          // EXPECT_* is not thread-safe; collect and assert on the main
          // thread after the join.
          const std::string ctx =
              "t=" + std::to_string(t) + " i=" + std::to_string(i);
          if (res.shed || res.partial || !res.missing_shards.empty()) {
            std::lock_guard<std::mutex> lock(failures_mu);
            failures.push_back(ctx + " flagged/shed");
          }
          for (std::size_t j = 1; j < res.neighbors.size(); ++j) {
            if (res.neighbors[j].distance < res.neighbors[j - 1].distance) {
              std::lock_guard<std::mutex> lock(failures_mu);
              failures.push_back(ctx + " unsorted neighbours");
            }
          }
        }
        if (i % 3 == 0) {
          const std::string s = "qz" + std::to_string(t) + "ws" +
                                std::to_string(i) + "xv";
          const std::uint64_t id = router.Insert(s);
          if (i % 6 == 0) {
            kept[t].emplace_back(id, s);
          } else {
            router.Remove(id);
            removed[t].push_back(s);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const std::string& f : failures) ADD_FAILURE() << f;

  // Quiesced: every surviving insert is served (distance 0, its own id),
  // every removed one is gone (the synthetic strings are nowhere near
  // the dictionary, so distance 0 can only be the string itself).
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (const auto& [id, s] : kept[t]) {
      const ServeResult res = engine.Nearest(s);
      ASSERT_EQ(res.neighbors.size(), 1u) << s;
      EXPECT_EQ(res.neighbors[0].distance, 0.0) << s;
      EXPECT_EQ(res.neighbors[0].index, id) << s;
    }
    for (const std::string& s : removed[t]) {
      const ServeResult res = engine.Nearest(s);
      ASSERT_EQ(res.neighbors.size(), 1u) << s;
      EXPECT_GT(res.neighbors[0].distance, 0.0) << s;
    }
  }
}

}  // namespace
}  // namespace cned
