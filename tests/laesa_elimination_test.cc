// Regression tests pinning LAESA's harmonized elimination semantics: a
// candidate whose pivot lower bound *reaches* the incumbent (lower >= best,
// or >= the k-th best in KNearest) is eliminated without computing its
// distance, because under strict-improvement tie handling it can at most
// tie. Before this was harmonized, `Nearest` eliminated at >= while
// `KNearest` eliminated only at >, so k = 1 KNearest could compute strictly
// more distances than Nearest for the same query.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "search/laesa.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

TEST(LaesaEliminationTest, TieLowerBoundIsEliminatedInNearest) {
  // Query "ab": d(q, "aa") = 1 (best). Pivot row gives lower("bb") =
  // |1 - d("aa","bb")| = |1 - 2| = 1 >= best — eliminated without
  // computation under the agreed semantics.
  std::vector<std::string> protos{"aa", "bb"};
  Laesa laesa(protos, MakeDistance("dE"), std::vector<std::size_t>{0});
  Laesa::QueryStats stats;
  auto r = laesa.Nearest("ab", &stats);
  EXPECT_EQ(r.index, 0u);
  EXPECT_DOUBLE_EQ(r.distance, 1.0);
  EXPECT_EQ(stats.distance_computations, 1u);
}

TEST(LaesaEliminationTest, TieLowerBoundIsEliminatedInKNearest) {
  // Identical setup: k = 1 KNearest must prune exactly like Nearest (this
  // is the case that regressed when KNearest used strict > elimination).
  std::vector<std::string> protos{"aa", "bb"};
  Laesa laesa(protos, MakeDistance("dE"), std::vector<std::size_t>{0});
  Laesa::QueryStats stats;
  auto r = laesa.KNearest("ab", 1, &stats);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].index, 0u);
  EXPECT_DOUBLE_EQ(r[0].distance, 1.0);
  EXPECT_EQ(stats.distance_computations, 1u);
}

TEST(LaesaEliminationTest, KNearestOneMirrorsNearestExactly) {
  // With harmonized thresholds, k = 1 KNearest and Nearest follow the same
  // trajectory: same result, same computation count, on every query.
  DictionaryOptions opt;
  opt.word_count = 250;
  opt.seed = 7201;
  auto protos = GenerateDictionary(opt).strings;
  Rng rng(7202);
  auto queries = MakeQueries(protos, 40, 2, Alphabet::Latin(), rng);

  for (const auto& name : {"dE", "dC,h"}) {
    Laesa laesa(protos, MakeDistance(name), 15);
    for (const auto& q : queries) {
      Laesa::QueryStats s1, sk;
      auto nearest = laesa.Nearest(q, &s1);
      auto knearest = laesa.KNearest(q, 1, &sk);
      ASSERT_EQ(knearest.size(), 1u) << name << " q=" << q;
      EXPECT_EQ(knearest[0].index, nearest.index) << name << " q=" << q;
      EXPECT_DOUBLE_EQ(knearest[0].distance, nearest.distance)
          << name << " q=" << q;
      EXPECT_EQ(sk.distance_computations, s1.distance_computations)
          << name << " q=" << q;
    }
  }
}

TEST(LaesaEliminationTest, BoundedAbandonsAreCountedAndBenign) {
  // The bounded kernel must not change any result, and on a realistic
  // workload some non-pivot evaluations should be abandoned.
  DictionaryOptions opt;
  opt.word_count = 300;
  opt.seed = 7203;
  auto protos = GenerateDictionary(opt).strings;
  Rng rng(7204);
  auto queries = MakeQueries(protos, 50, 2, Alphabet::Latin(), rng);

  Laesa laesa(protos, MakeDistance("dC"), 20);
  Laesa::QueryStats stats;
  std::uint64_t hits = 0;
  for (const auto& q : queries) {
    auto r = laesa.Nearest(q, &stats);
    hits += r.index;  // consume the result
  }
  (void)hits;
  EXPECT_LE(stats.bounded_abandons, stats.distance_computations);
  EXPECT_GT(stats.bounded_abandons, 0u)
      << "expected the contextual kernel to abandon at least one "
         "non-pivot evaluation across 50 queries";
}

}  // namespace
}  // namespace cned
